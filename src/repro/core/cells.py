"""Shared cell-collection machinery for BA and AA (``d ≥ 3``).

Both the basic and the advanced approach repeatedly need the same primitive:
given the current augmented quad-tree over (a subset of) the incomparable
half-spaces, find the cells of the implied arrangement with the smallest
order — processing leaves in increasing ``|F_l|`` order and pruning leaves
that cannot contain a competitive cell.  BA runs the primitive once over the
full set of half-spaces; AA runs it once per iteration over the mixed
arrangement.  The iMaxRank variant widens the collection bound by ``τ``.

:func:`collect_cells` implements that primitive and returns
:class:`CellRecord` objects, which carry everything the callers need: the
leaf, the within-leaf cell, its order, and the ids of the half-spaces that
contain it.  :func:`region_for_cell` converts a record into the user-facing
:class:`~repro.core.result.MaxRankRegion`.

The scan is *incremental*: it walks the tree's lazily-validated priority
buckets (leaves keyed by ``|F_l|``) instead of traversing and sorting every
leaf, so its cost is proportional to the number of competitive leaves — not
to the size of the tree.  Between AA iterations only the leaves reported
dirty by the tree (partial-overlap set grew) lose their cached within-leaf
state, and even then three things survive into the replacement processor:
the witness points already found (accept-screen probes), the pairwise
conflict masks (old pair verdicts stay valid because the leaf box is
unchanged and the old partial set is a prefix of the new one) and the
surviving-prefix frontier (re-enumeration extends previously surviving
prefixes by the new half-spaces instead of re-walking the whole assignment
tree).  This makes re-scans of a grown leaf largely LP-free *and* largely
enumeration-free.

Execution engine
----------------
The scan doubles as the *scheduler* of the execution engine
(:mod:`repro.engine`): the ``(leaf, weight)`` probes of one priority level
are mutually independent, so they are materialised as self-contained
:class:`~repro.engine.tasks.LeafTask` units and handed to a pluggable
executor.  With the default serial executor the tasks run against
long-lived in-process processors — byte-for-byte the pre-engine scan.  With
a :class:`~repro.engine.executors.ProcessPoolExecutor` the tasks carry a
snapshot of their leaf's reusable state (probe-panel history, pairwise
verdicts, frontier) into worker processes, and the results — cells, new
witnesses, frontier entries, worker-local
:class:`~repro.stats.CostCounters` — are merged back **in task order**, so
parallel runs reproduce the serial results and cost reports exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..engine.deadline import Deadline
from ..engine.executors import LeafTaskExecutor
from ..engine.tasks import LeafTask, LeafTaskResult
from ..geometry.halfspace import Halfspace, reduced_space_constraints
from ..geometry.polytope import ConvexPolytope
from ..quadtree.quadtree import AugmentedQuadTree, QuadTreeNode
from ..quadtree.withinleaf import LeafCell, LeafReuseState, WithinLeafProcessor
from ..stats import CostCounters
from .result import MaxRankRegion

__all__ = ["CellRecord", "collect_cells", "region_for_cell"]


@dataclass(frozen=True)
class CellRecord:
    """One non-empty arrangement cell found during a quad-tree scan.

    Attributes
    ----------
    leaf:
        The quad-tree leaf the cell was found in.
    cell:
        The within-leaf cell (bit-string, p-order, witness point).
    order:
        Global cell order: ``|F_l|`` plus the cell's p-order.
    containing_ids:
        Ids of every half-space containing the cell (full-containment set of
        the leaf plus the bit-string's 1-bits).
    full_ids:
        The leaf's full-containment set (kept separately so regions can be
        rebuilt without re-deriving it).
    """

    leaf: QuadTreeNode
    cell: LeafCell
    order: int
    containing_ids: FrozenSet[int]
    full_ids: FrozenSet[int]


class _LeafScanState:
    """Per-leaf scan state: memoised per-weight results plus reusable seeds.

    In **inline** mode (serial executor) the state owns a long-lived
    :class:`WithinLeafProcessor`, exactly as the pre-engine scan did.  In
    **task** mode (process pool) it instead mirrors the state a long-lived
    processor would hold — probe-panel history, pairwise verdicts, frontier
    entries — assembled from task-result deltas; :meth:`make_task`
    snapshots the mirror into the next self-contained
    :class:`~repro.engine.tasks.LeafTask` so the rebuilt worker-side
    processor is indistinguishable from the live one.
    """

    __slots__ = (
        "partial_len",
        "seq",
        "weight_cells",
        "processor",
        "lower",
        "upper",
        "partial_pairs",
        "use_pairwise",
        "use_planar",
        "track_frontier",
        "seed_probes",
        "seed_state",
        "witnesses",
        "pairwise",
        "planar",
        "frontier",
        "deadline",
    )

    def __init__(
        self,
        leaf: QuadTreeNode,
        partial_pairs: Tuple[Tuple[int, Halfspace], ...],
        *,
        use_pairwise: bool,
        use_planar: bool,
        seed_probes: Optional[List[np.ndarray]],
        seed_state: Optional[LeafReuseState],
        track_frontier: bool,
        inline: bool,
        counters: Optional[CostCounters],
        deadline: Optional[Deadline] = None,
    ) -> None:
        self.partial_len = len(partial_pairs)
        self.seq = leaf.seq
        self.weight_cells: Dict[int, List[LeafCell]] = {}
        self.deadline = deadline
        if inline:
            self.processor: Optional[WithinLeafProcessor] = WithinLeafProcessor(
                leaf.lower,
                leaf.upper,
                partial_pairs,
                use_pairwise=use_pairwise,
                counters=counters,
                seed_probes=seed_probes,
                seed_state=seed_state,
                track_frontier=track_frontier,
                use_planar=use_planar,
                deadline=deadline,
            )
            return
        self.processor = None
        self.lower = leaf.lower
        self.upper = leaf.upper
        self.partial_pairs = partial_pairs
        self.use_pairwise = use_pairwise
        self.use_planar = use_planar
        self.track_frontier = track_frontier
        #: probe-panel history shipped to every task: harvested seeds first,
        #: then LP witnesses in discovery order (mirrors the live panel)
        self.seed_probes: Tuple[np.ndarray, ...] = (
            tuple(seed_probes) if seed_probes else ()
        )
        #: harvested reuse state — constant for this leaf configuration
        self.seed_state = seed_state
        self.witnesses: List[np.ndarray] = []
        self.pairwise = None
        #: planar arrangement of this leaf configuration, mirrored from the
        #: first task that built (or extended) it
        self.planar = None
        self.frontier: Dict[int, Optional[Tuple[Tuple[int, ...], ...]]] = {}

    # ------------------------------------------------------------ execution
    def cells_at_inline(self, weight: int) -> List[LeafCell]:
        """Memoised within-leaf enumeration against the live processor."""
        if weight not in self.weight_cells:
            self.weight_cells[weight] = self.processor.cells_at_weight(weight)
        return self.weight_cells[weight]

    def make_task(self, leaf_key: int, weight: int, trace=None) -> LeafTask:
        """Snapshot the mirror into a self-contained task for ``weight``."""
        probes = self.seed_probes + tuple(self.witnesses)
        seed_state = self.seed_state
        if (
            self.planar is not None
            and seed_state is not None
            and seed_state.planar is not None
        ):
            # Once some task built (or extended) this configuration's
            # arrangement, the shipped ``planar`` is adopted verbatim and
            # the seed's retained arrangement is dead weight — strip it
            # from the snapshot rather than pickling O(m²) face polygons
            # twice per task.
            seed_state = replace(seed_state, planar=None)
        return LeafTask(
            leaf_key=leaf_key,
            seq=self.seq,
            weight=weight,
            lower=self.lower,
            upper=self.upper,
            partial=self.partial_pairs,
            use_pairwise=self.use_pairwise,
            track_frontier=self.track_frontier,
            seed_probes=probes if probes else None,
            seed_state=seed_state,
            pairwise=self.pairwise,
            use_planar=self.use_planar,
            planar=self.planar,
            deadline=self.deadline,
            trace=trace,
        )

    def absorb(self, result: LeafTaskResult) -> None:
        """Merge a task result's deltas back into the mirror."""
        self.weight_cells[result.weight] = result.cells
        self.witnesses.extend(result.witnesses)
        self.frontier.update(result.frontier)
        if result.pairwise is not None:
            self.pairwise = result.pairwise
        if result.planar is not None:
            self.planar = result.planar

    # -------------------------------------------------------------- harvest
    def witness_points(self) -> List[np.ndarray]:
        """Interior points of every memoised non-empty cell, plus LP probes.

        When the leaf's partial set grows, these remain interior points of
        cells of the refined arrangement and are handed to the replacement
        processor as accept-screen probes.
        """
        points = [
            cell.interior_point
            for cells in self.weight_cells.values()
            for cell in cells
        ]
        if self.processor is not None:
            points.extend(self.processor.witness_probes())
        else:
            points.extend(self.witnesses)
        return points

    def reuse_state(self) -> LeafReuseState:
        """The leaf's reusable state (pairwise verdicts + frontier)."""
        if self.processor is not None:
            return self.processor.reuse_state()
        return LeafReuseState(
            partial_ids=tuple(hid for hid, _ in self.partial_pairs),
            pairwise=self.pairwise,
            frontier=dict(self.frontier),
            planar=self.planar,
        )


def collect_cells(
    tree: AugmentedQuadTree,
    *,
    tau: int = 0,
    use_pairwise: bool = True,
    use_planar: bool = False,
    counters: Optional[CostCounters] = None,
    cache: Optional[dict] = None,
    executor: Optional[LeafTaskExecutor] = None,
    deadline: Optional[Deadline] = None,
) -> Tuple[Optional[int], List[CellRecord]]:
    """Scan the quad-tree for the smallest-order cells of its arrangement.

    Returns ``(best_order, cells)`` where ``cells`` contains every non-empty
    cell whose order is at most ``best_order + tau``.  ``best_order`` is
    ``None`` when the arrangement has no non-empty cell inside the
    permissible simplex (which only happens for degenerate inputs).

    Candidate ``(leaf, Hamming weight)`` pairs are explored best-first by the
    lower bound ``|F_l| + weight`` on the order of any cell they can produce.
    This generalises the paper's leaf-pruning rule (a leaf whose ``|F_l|``
    exceeds the best order found so far, plus ``tau``, is never processed)
    and additionally guarantees that no leaf is enumerated beyond the weight
    a competitive cell could have — important when a leaf's partial set is
    large.

    Parameters
    ----------
    cache:
        Optional dictionary reused across calls (AA scans the same tree once
        per iteration).  Per-leaf, per-weight results are stored keyed by
        ``id(leaf)`` and invalidated when the leaf's partial-overlap set has
        grown since they were computed; the invalidated entry's witness
        points seed the new processor's accept screen, and its reuse state
        (pairwise conflict masks plus the surviving-prefix frontier) seeds
        the new processor's candidate generation.
    executor:
        Optional :class:`~repro.engine.executors.LeafTaskExecutor`.  The
        independent ``(leaf, weight)`` probes of each priority level run
        through it; ``None`` (or any ``inline`` executor) selects the
        in-process serial path.  All executors produce bit-identical
        results and counters — only wall-clock differs.
    use_planar:
        Enable the planar-arrangement sweep inside leaves of a
        2-dimensional reduced space (the ``d = 3`` fast path; see
        :mod:`repro.geometry.planar`).  Ignored at other dimensionalities;
        results are bit-identical either way.
    deadline:
        Optional wall-clock budget (:class:`~repro.engine.deadline.Deadline`).
        Checked once per priority level here and at the within-leaf
        checkpoints (the deadline travels inside every
        :class:`~repro.engine.tasks.LeafTask`); expiry raises
        :class:`~repro.errors.QueryTimeoutError` carrying the partial
        counters.  ``None`` (the default) disables every checkpoint.
    """
    inline = executor is None or executor.inline
    # Tracing piggybacks on the counters object; off (None) costs one check.
    tracer = counters._tracer if counters is not None else None
    # Harvest witness and reuse-state seeds from cache entries the tree
    # reports as dirty.
    dirty = tree.consume_dirty_leaves()
    seeds: Dict[int, Tuple[List[np.ndarray], LeafReuseState]] = {}
    if cache is not None and dirty:
        for key in dirty:
            entry = cache.pop(key, None)
            if entry is not None:
                seeds[key] = (entry.witness_points(), entry.reuse_state())

    def state_for(leaf: QuadTreeNode) -> _LeafScanState:
        key = id(leaf)
        if cache is not None:
            entry = cache.get(key)
            if (
                entry is not None
                and entry.partial_len == len(leaf.partial)
                and (entry.processor is not None) == inline
            ):
                return entry
        seed_probes, seed_state = seeds.get(key, (None, None))
        state = _LeafScanState(
            leaf,
            tree.leaf_partial_pairs(leaf),
            use_pairwise=use_pairwise,
            use_planar=use_planar,
            seed_probes=seed_probes,
            seed_state=seed_state,
            track_frontier=cache is not None,
            inline=inline,
            counters=counters,
            deadline=deadline,
        )
        if cache is not None:
            cache[key] = state
        return state

    best: Optional[int] = None
    collected: List[CellRecord] = []
    touched = 0
    entered: set = set()
    #: weight continuations: priority -> [(leaf, state, weight)]
    deferred: Dict[int, List[Tuple[QuadTreeNode, Optional[_LeafScanState], int]]] = {}

    priority = 0
    while True:
        if deadline is not None:
            # Cancellation checkpoint: once per priority level of the scan.
            deadline.check(counters, "collect_cells")
        if best is not None and priority > best + tau:
            break
        if (
            best is None
            and priority > tree.max_bucket_priority()
            and not deferred
        ):
            break
        work: List[Tuple[QuadTreeNode, Optional[_LeafScanState], int]] = []
        for leaf in tree.validated_bucket(priority):
            if id(leaf) not in entered:
                entered.add(id(leaf))
                work.append((leaf, None, 0))
        work.extend(deferred.pop(priority, ()))

        resolved: List[Tuple[QuadTreeNode, _LeafScanState, int]] = []
        for leaf, state, weight in work:
            if state is None:
                state = state_for(leaf)
                touched += 1
            resolved.append((leaf, state, weight))

        # One span per non-empty priority level; leaf-task spans (worker or
        # inline) parent under it through the task's TraceContext.
        level_handle = None
        if tracer is not None and resolved:
            level_handle = tracer.begin("collect_level")
        try:
            if not inline:
                # Materialise every unresolved (leaf, weight) probe of this
                # priority level as a self-contained task; the batch runs on
                # the executor and the results merge back in task order.
                task_trace = (
                    tracer.context() if level_handle is not None else None
                )
                pending = [
                    (index, state.make_task(id(leaf), weight, trace=task_trace))
                    for index, (leaf, state, weight) in enumerate(resolved)
                    if weight <= state.partial_len
                    and weight not in state.weight_cells
                ]
                if pending:
                    results = executor.run([task for _, task in pending])
                    if len(results) != len(pending):
                        raise RuntimeError(
                            f"executor returned {len(results)} results "
                            f"for {len(pending)} tasks"
                        )
                    for (index, task), result in zip(pending, results):
                        if result.leaf_key != task.leaf_key or result.weight != task.weight:
                            raise RuntimeError(
                                "executor returned results out of task order"
                            )
                        resolved[index][1].absorb(result)
                        if counters is not None and result.counters is not None:
                            counters.merge(result.counters)
                    if counters is not None:
                        # Fold the executor's robustness events (worker
                        # retries, serial degradations) into this query's
                        # cost report.
                        for name, value in executor.drain_events().items():
                            setattr(counters, name, getattr(counters, name) + value)

            for leaf, state, weight in resolved:
                if weight > state.partial_len:
                    continue
                if inline:
                    cells = state.cells_at_inline(weight)
                else:
                    cells = state.weight_cells[weight]
                if cells:
                    if best is None:
                        best = priority
                    frozen_full = frozenset(leaf.full_ids())
                    for cell in cells:
                        collected.append(
                            CellRecord(
                                leaf=leaf,
                                cell=cell,
                                order=priority,
                                containing_ids=frozen_full | frozenset(cell.inside_ids),
                                full_ids=frozen_full,
                            )
                        )
                if weight < state.partial_len:
                    deferred.setdefault(priority + 1, []).append((leaf, state, weight + 1))
        finally:
            if level_handle is not None:
                tracer.finish(
                    level_handle, priority=priority, leaves=len(resolved)
                )
        priority += 1

    if counters is not None:
        counters.leaves_processed += touched
        counters.leaves_pruned += tree.live_leaf_count - touched
    if best is None:
        return None, []
    kept = [record for record in collected if record.order <= best + tau]
    kept.sort(key=lambda record: (record.order, record.leaf.seq, record.cell.bits))
    return best, kept


def region_for_cell(
    tree: AugmentedQuadTree,
    record: CellRecord,
    dominator_count: int,
) -> MaxRankRegion:
    """Convert a collected cell into a user-facing :class:`MaxRankRegion`.

    The region geometry is the intersection of the leaf extent, the
    permissible-simplex constraints, and the half-spaces / complements
    selected by the cell's bit-string.  The half-spaces that fully contain
    the leaf are redundant inside the leaf box and are therefore omitted from
    the geometry, but their inducing records do appear in ``outscored_by``.
    """
    constraints = list(reduced_space_constraints(tree.dim))
    for (hid, _), bit in zip(
        [(hid, tree.halfspace(hid)) for hid in record.leaf.partial], record.cell.bits
    ):
        halfspace = tree.halfspace(hid)
        constraints.append(halfspace if bit else halfspace.complement())
    geometry = ConvexPolytope(constraints, record.leaf.lower, record.leaf.upper)
    outscored = []
    for hid in sorted(record.containing_ids):
        record_id = tree.halfspace(hid).record_id
        if record_id is not None:
            outscored.append(record_id)
    return MaxRankRegion(
        geometry=geometry,
        cell_order=record.order,
        order=dominator_count + record.order + 1,
        outscored_by=tuple(outscored),
    )
