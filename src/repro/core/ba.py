"""Basic approach (BA) for MaxRank in general dimensionality (paper, Section 5).

BA reads every incomparable record, maps each to a half-space of the reduced
query space, organises all those half-spaces in an augmented quad-tree, and
then processes the quad-tree leaves in increasing ``|F_l|`` order, running
the within-leaf module on each leaf that could still contain a cell of
competitive order.  The result is exact, but — as the paper's evaluation
shows — BA does not scale: it must access the whole dataset and insert one
half-space per incomparable record, which is why it is only run on small
cardinalities in the benchmarks (the same restriction the paper applies).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ..data.dataset import Dataset
from ..engine.deadline import Deadline
from ..engine.executors import LeafTaskExecutor, resolve_executor
from ..errors import AlgorithmError
from ..geometry.halfspace import halfspace_for_record
from ..index.rstar import RStarTree
from ..quadtree.quadtree import AugmentedQuadTree
from ..stats import CostCounters
from .accessor import DataAccessor
from .cells import collect_cells, region_for_cell
from .result import MaxRankRegion, MaxRankResult
from ._whole_space import whole_space_region

__all__ = ["ba_maxrank"]


def ba_maxrank(
    dataset: Dataset,
    focal: Sequence[float] | np.ndarray | int,
    *,
    tau: int = 0,
    tree: Optional[RStarTree] = None,
    counters: Optional[CostCounters] = None,
    split_threshold: Optional[int] = None,
    max_depth: Optional[int] = None,
    split_policy: str = "static",
    use_pairwise: bool = True,
    use_planar: bool = False,
    executor: Optional[LeafTaskExecutor] = None,
    deadline: Optional[Deadline] = None,
) -> MaxRankResult:
    """Answer a MaxRank / iMaxRank query with the basic approach (``d ≥ 3``).

    BA (paper, Section 5) maps every incomparable record to a half-space of
    the reduced query space, indexes all of them in one augmented quad-tree
    (Section 5.1) and scans the leaves in increasing ``|F_l|`` order with
    within-leaf processing (Section 5.2).  Exact but non-scalable — it reads
    the whole dataset — which is why the paper (and the benchmarks here)
    only run it at small cardinalities.

    Parameters
    ----------
    dataset, focal:
        The dataset ``D`` (``d ≥ 3``) and focal record ``p`` (index or
        coordinates).
    tau:
        iMaxRank slack ``τ ≥ 0``; 0 gives plain MaxRank.
    tree:
        Optional pre-built R*-tree over the dataset.
    counters:
        Optional cost counters to accumulate into.
    split_threshold:
        Quad-tree leaf split threshold (ablation A2).
    max_depth:
        Quad-tree depth cap; ``0`` keeps the whole reduced space as one fat
        leaf (the ``engine="planar-global"`` mode).
    split_policy:
        ``"static"`` (default) or ``"cost"`` — see
        :class:`~repro.quadtree.quadtree.AugmentedQuadTree`.  ``k*`` and the
        covered regions are policy-invariant; only leaf fragmentation
        differs.
    use_pairwise:
        Enable pairwise-constraint pruning inside leaves (ablation A1).  On
        by default: the LP-free pair analysis compiles into conflict
        bitmasks that stop forbidden candidate bit-strings from ever being
        generated.
    use_planar:
        Enable the planar-arrangement sweep inside leaves (``d = 3`` only;
        see :mod:`repro.geometry.planar`).  Bit-identical results; the
        :func:`repro.core.maxrank.maxrank` façade switches it on
        automatically at ``d = 3``.
    executor:
        Optional :class:`~repro.engine.executors.LeafTaskExecutor` running
        the independent within-leaf probes of each scan level (e.g. a
        process pool; see :mod:`repro.engine`).  ``None`` selects the
        serial in-process path, unless ``REPRO_JOBS`` forces a pool.
    deadline:
        Optional wall-clock budget (:class:`~repro.engine.deadline.Deadline`);
        checked at the start, before the quad-tree build, per scan priority
        level and inside the within-leaf funnel.  Expiry raises
        :class:`~repro.errors.QueryTimeoutError`.

    Returns
    -------
    MaxRankResult
        ``k*``, the minimum-order regions ``T`` (orders up to the minimum
        plus ``tau``) and the cost report; ``algorithm`` is ``"BA"``.

    Raises
    ------
    AlgorithmError
        When ``d < 3`` (use FCA or the 2-D advanced approach) or
        ``tau < 0``.
    """
    if dataset.d < 3:
        raise AlgorithmError(
            f"BA requires d >= 3 (use FCA for d = 2), got d = {dataset.d}"
        )
    if tau < 0:
        raise AlgorithmError(f"tau must be non-negative, got {tau}")
    start = time.perf_counter()
    executor = resolve_executor(executor)
    accessor = DataAccessor(dataset, focal, tree=tree, counters=counters)
    counters = accessor.counters
    if deadline is not None:
        deadline.check(counters, "ba_start")

    dominators = accessor.dominator_count()
    incomparable = accessor.scan_incomparable()

    reduced_dim = dataset.d - 1
    quadtree = AugmentedQuadTree(
        reduced_dim,
        split_threshold=split_threshold,
        max_depth=max_depth,
        split_policy=split_policy,
        counters=counters,
    )
    if deadline is not None:
        deadline.check(counters, "ba_quadtree_build")
    with counters.timer("quadtree_build"):
        quadtree.insert_bulk(
            [
                halfspace_for_record(point, accessor.focal, record_id=record_id)
                for record_id, point in incomparable
            ],
            executor=executor,
        )

    if len(quadtree) == 0:
        regions = [whole_space_region(reduced_dim, dominators)]
        return MaxRankResult(
            k_star=dominators + 1,
            regions=regions,
            dominator_count=dominators,
            minimum_cell_order=0,
            tau=tau,
            algorithm="BA",
            counters=counters,
            cpu_seconds=time.perf_counter() - start,
            focal=accessor.focal,
        )

    with counters.timer("within_leaf"):
        best_order, cell_records = collect_cells(
            quadtree,
            tau=tau,
            use_pairwise=use_pairwise,
            use_planar=use_planar,
            counters=counters,
            executor=executor,
            deadline=deadline,
        )
    if best_order is None:
        raise AlgorithmError(
            "BA found no non-empty arrangement cell; the permissible query space is empty"
        )

    regions = [region_for_cell(quadtree, record, dominators) for record in cell_records]
    return MaxRankResult(
        k_star=dominators + best_order + 1,
        regions=regions,
        dominator_count=dominators,
        minimum_cell_order=best_order,
        tau=tau,
        algorithm="BA",
        counters=counters,
        cpu_seconds=time.perf_counter() - start,
        focal=accessor.focal,
    )
