"""Public MaxRank / iMaxRank entry points.

:func:`maxrank` dispatches a query to the appropriate algorithm.  The
default, ``algorithm="auto"``, picks the paper's recommended processing
strategy: the specialised 2-dimensional advanced approach for ``d = 2`` and
the general advanced approach for ``d ≥ 3``.  The first-cut algorithm (FCA)
and the basic approach (BA) remain selectable — they are the baselines the
paper compares against and the benchmarks need them — as are the exact and
sampling brute-force oracles.

:func:`imaxrank` is a thin convenience wrapper that makes the incremental
variant (Definition 2 of the paper) explicit in calling code.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..data.dataset import Dataset
from ..engine.deadline import Deadline
from ..engine.executors import make_executor
from ..errors import AlgorithmError, QueryTimeoutError
from ..index.rstar import RStarTree
from ..skyline.bbs import SkylineCache
from ..stats import CostCounters
from .aa import aa_maxrank
from .aa2d import aa2d_maxrank
from .aa3d import aa3d_maxrank
from .ba import ba_maxrank
from .bruteforce import maxrank_exact_small
from .fca import fca_maxrank
from .result import MaxRankResult

__all__ = ["maxrank", "imaxrank", "ALGORITHMS", "ENGINES"]

#: Selectable algorithm names.
ALGORITHMS = ("auto", "aa", "aa2d", "aa3d", "ba", "fca", "exact")

#: Within-leaf engine names for the quad-tree algorithms at ``d = 3``:
#: ``"auto"`` dispatches the planar-arrangement sweep, ``"planar"`` forces
#: it (and requires ``d = 3``), ``"planar-global"`` additionally skips the
#: quad-tree (``max_depth=0`` — one arrangement over the whole reduced
#: plane, no build cost; same ``k*``/coverage, coarser region fragments)
#: and ``"generic"`` is the escape hatch back to the combinatorial
#: candidate generator.  ``auto``/``planar``/``generic`` are bit-identical.
ENGINES = ("auto", "planar", "planar-global", "generic")


def maxrank(
    dataset: Dataset,
    focal: Sequence[float] | np.ndarray | int,
    *,
    algorithm: str = "auto",
    engine: str = "auto",
    tau: int = 0,
    tree: Optional[RStarTree] = None,
    counters: Optional[CostCounters] = None,
    jobs: Optional[int] = None,
    skyline_cache: Optional[SkylineCache] = None,
    deadline: Optional[Deadline] = None,
    **options,
) -> MaxRankResult:
    """Answer a MaxRank (or iMaxRank, with ``tau > 0``) query.

    MaxRank (paper, Definition 1) asks for the highest rank ``k*`` a focal
    record can achieve in the dataset under *any* linear preference vector,
    together with all regions ``T`` of the preference space where that rank
    is attained; iMaxRank (Definition 2) widens the answer to every region
    within ``tau`` ranks of the optimum.  This façade dispatches to the
    paper's algorithms: FCA (Section 4), BA (Section 5), AA (Section 6) and
    the 2-D specialisation of AA (Section 6.3), plus brute-force oracles
    used for verification.

    Parameters
    ----------
    dataset:
        The dataset ``D``.
    focal:
        The focal record ``p`` — either an index into ``dataset`` or explicit
        coordinates (it need not belong to the dataset, enabling the what-if
        analyses of the paper's introduction).
    algorithm:
        One of ``"auto"``, ``"aa"``, ``"aa2d"``, ``"aa3d"``, ``"ba"``,
        ``"fca"``, ``"exact"``.  ``"auto"`` selects the paper's recommended
        processing strategy for the dataset's dimensionality: ``aa2d`` for
        ``d = 2``, ``aa3d`` (the planar-sweep specialisation) for ``d = 3``
        and ``aa`` for ``d ≥ 4``.
    engine:
        Within-leaf engine for the quad-tree algorithms at ``d = 3``:
        ``"auto"`` (default) dispatches the planar-arrangement sweep,
        ``"planar"`` forces it (``d = 3`` only), ``"generic"`` is the
        escape hatch back to the combinatorial candidate generator.  The
        two engines are bit-identical in results and engine-invariant
        counters; the flag exists for A/B runs and differential testing.
        ``"planar-global"`` (``d = 3``, AA only) is the whole-space mode:
        the quad-tree is built with ``max_depth=0`` so the entire reduced
        plane is one leaf served by a single incremental planar
        arrangement — no split cascade at all.  ``k*`` and the covered
        region match the other engines; only the leaf-fragment granularity
        of the reported regions differs.  Ignored (after validation) by
        the non-quad-tree algorithms.
    tau:
        iMaxRank slack ``τ ≥ 0``; regions covering orders up to
        ``k* + tau`` are reported.
    tree:
        Optional pre-built :class:`~repro.index.rstar.RStarTree` over
        ``dataset.records`` (reused across queries by the benchmarks).
    counters:
        Optional :class:`~repro.stats.CostCounters` to accumulate costs into.
    jobs:
        Number of worker processes for the within-leaf execution engine
        (BA/AA only; see :mod:`repro.engine`).  ``None`` or ``1`` runs
        serially; ``jobs >= 2`` creates a process pool for this query.
        Results and cost counters are bit-identical to the serial run.
        For batches of queries, build one executor with
        :func:`repro.engine.make_executor` and pass ``executor=`` instead,
        so the pool is reused across queries.
    skyline_cache:
        Optional warm :class:`~repro.skyline.bbs.SkylineCache` built for
        ``tree`` (the :mod:`repro.service` layer shares one across all
        queries it serves).  Consumed by the BBS-driven algorithms (AA,
        AA-2D, AA-3D) and ignored by the scan-based ones (FCA, BA, exact);
        a pure CPU memo, so results and engine-invariant counters are
        identical with and without it.
    deadline:
        Optional wall-clock budget: a
        :class:`~repro.engine.deadline.Deadline` (build one with
        ``Deadline.after(seconds)``; :meth:`MaxRankService.query` exposes
        the friendlier ``timeout=`` seconds form).  Checked at entry for
        every algorithm and cooperatively throughout the quad-tree
        algorithms (AA/BA/AA-3D: per iteration, per scan priority level
        and inside the within-leaf funnel; AA-2D: per arrangement
        iteration).  FCA and the brute-force oracles only check at entry —
        they are verification baselines, not serving paths.  Expiry raises
        :class:`~repro.errors.QueryTimeoutError` carrying the partial
        counters; ``None`` (default) disables every checkpoint.
    options:
        Algorithm-specific tuning knobs (``split_threshold``,
        ``split_policy``, ``max_depth``, ``use_pairwise``, ``executor``
        for BA/AA).

    Returns
    -------
    MaxRankResult
        ``k*`` (:attr:`~repro.core.result.MaxRankResult.k_star`), the result
        regions ``T`` (each a convex polytope of the reduced preference
        space with a ``representative_query()``), the dominator count, the
        algorithm label and the per-query cost report.

    Raises
    ------
    AlgorithmError
        For an unknown algorithm name, a negative ``tau``, an algorithm
        incompatible with the dataset's dimensionality, or a ``deadline``
        that is not a :class:`~repro.engine.deadline.Deadline`.
    QueryTimeoutError
        When ``deadline`` expires before the query completes.
    """
    if deadline is not None:
        if not isinstance(deadline, Deadline):
            raise AlgorithmError(
                f"deadline must be a repro.engine.Deadline "
                f"(build one with Deadline.after(seconds)), got "
                f"{type(deadline).__name__}"
            )
        # Entry checkpoint: an already-expired budget fails fast for every
        # algorithm, including the ones without interior checkpoints.
        deadline.check(counters, "maxrank_entry")
    name = algorithm.lower()
    if name not in ALGORITHMS:
        raise AlgorithmError(
            f"unknown algorithm {algorithm!r}; choose one of {ALGORITHMS}"
        )
    engine_name = engine.lower()
    if engine_name not in ENGINES:
        raise AlgorithmError(
            f"unknown engine {engine!r}; choose one of {ENGINES}"
        )
    if engine_name in ("planar", "planar-global") and dataset.d != 3:
        raise AlgorithmError(
            f"engine={engine_name!r} requires d = 3 (the reduced space must "
            f"be a plane), got d = {dataset.d}"
        )
    if name == "auto":
        if dataset.d == 2:
            name = "aa2d"
        elif dataset.d == 3 and engine_name != "generic":
            name = "aa3d"
        else:
            name = "aa"
    if name == "aa3d" and engine_name == "generic":
        raise AlgorithmError(
            "algorithm='aa3d' is the planar-sweep specialisation; "
            "use algorithm='aa' with engine='generic' for the generic path"
        )
    if engine_name == "planar-global":
        if name != "aa3d":
            raise AlgorithmError(
                "engine='planar-global' is the whole-space AA-3D mode; "
                f"it cannot be combined with algorithm={algorithm!r}"
            )
        if "max_depth" in options:
            raise AlgorithmError(
                "engine='planar-global' fixes max_depth=0 (the whole reduced "
                "plane is one leaf); don't pass max_depth alongside it"
            )

    try:
        if name == "fca":
            return fca_maxrank(dataset, focal, tau=tau, tree=tree, counters=counters)
        if name == "aa2d":
            return aa2d_maxrank(
                dataset,
                focal,
                tau=tau,
                tree=tree,
                counters=counters,
                skyline_cache=skyline_cache,
                deadline=deadline,
            )
        if name in ("ba", "aa", "aa3d"):
            run = {"ba": ba_maxrank, "aa": aa_maxrank, "aa3d": aa3d_maxrank}[name]
            if name != "ba" and skyline_cache is not None:
                # BA reads every incomparable record with a full scan and never
                # runs BBS, so the warm skyline state has nothing to memoise.
                options = dict(options, skyline_cache=skyline_cache)
            if "use_planar" in options:
                # The facade's within-leaf engine knob is ``engine=``; a raw
                # use_planar here could silently contradict the validated flag
                # (the algorithm-level entry points accept it directly).
                raise AlgorithmError(
                    "maxrank() selects the within-leaf engine through engine=; "
                    "pass use_planar only to aa_maxrank/ba_maxrank directly"
                )
            if name != "aa3d":
                # Auto-dispatch: at d = 3 the quad-tree algorithms use the
                # planar sweep unless the generic escape hatch is pulled.
                options = dict(
                    options,
                    use_planar=dataset.d == 3 and engine_name != "generic",
                )
            elif engine_name == "planar-global":
                options = dict(options, whole_space=True)
            owned = None
            if jobs is not None and options.get("executor") is None:
                owned = make_executor(jobs)
                if owned is not None:
                    options = dict(options, executor=owned)
            try:
                return run(
                    dataset, focal, tau=tau, tree=tree, counters=counters,
                    deadline=deadline, **options
                )
            finally:
                if owned is not None:
                    owned.close()
        return maxrank_exact_small(dataset, focal, tau=tau, **options)
    except QueryTimeoutError as exc:
        if counters is not None:
            # Attach the query-level counters: the leaf-side checkpoint
            # only sees its task-local tallies, but the caller (and the
            # service, which merges them into its aggregates) wants the
            # partial work of the whole cancelled query.
            exc.counters = counters
        raise


def imaxrank(
    dataset: Dataset,
    focal: Sequence[float] | np.ndarray | int,
    tau: int,
    *,
    algorithm: str = "auto",
    engine: str = "auto",
    tree: Optional[RStarTree] = None,
    counters: Optional[CostCounters] = None,
    **options,
) -> MaxRankResult:
    """Answer an incremental MaxRank query (paper, Definition 2).

    Convenience wrapper around :func:`maxrank` that makes the iMaxRank
    variant explicit in calling code: the result covers every region whose
    attained rank is within ``tau`` of the optimum ``k*`` (``tau = 0``
    degenerates to plain MaxRank).  Parameters, return value and errors are
    those of :func:`maxrank`, with ``tau`` promoted to a required positional
    argument.
    """
    if tau < 0:
        raise AlgorithmError(f"tau must be non-negative, got {tau}")
    return maxrank(
        dataset,
        focal,
        algorithm=algorithm,
        engine=engine,
        tau=tau,
        tree=tree,
        counters=counters,
        **options,
    )
