"""Data access layer shared by the MaxRank algorithms.

All algorithms consume the dataset through an R*-tree, mirroring the paper's
setting where data and index are disk resident and I/O is a headline metric.
:class:`DataAccessor` bundles the dataset, its R*-tree, the focal record and
a :class:`~repro.stats.CostCounters` object, and exposes exactly the access
patterns the algorithms need:

* aggregate dominator counting (cheap, few page reads);
* a full scan of the data (FCA and BA read every incomparable record);
* an incremental skyline of the incomparable records (AA's implicit
  subsumption driver), which only reads the pages BBS needs.

Keeping these behind one object makes the I/O accounting consistent across
algorithms and lets the benchmarks reuse a tree across the 40-query batches
the paper averages over.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..data.dataset import Dataset
from ..index.rstar import RStarTree
from ..skyline.bbs import IncrementalSkyline, SkylineCache
from ..skyline.dominance import DominancePartition, partition_by_dominance
from ..stats import CostCounters

__all__ = ["DataAccessor"]


class DataAccessor:
    """Unified, cost-accounted access to the dataset for one MaxRank query.

    Parameters
    ----------
    dataset:
        The dataset ``D``.
    focal:
        The focal record, as an index into ``dataset`` or explicit
        coordinates.
    tree:
        Optional pre-built R*-tree over ``dataset.records`` (record ids must
        be row indices).  Built on demand when omitted.
    counters:
        Cost counters to charge; a fresh object is created when omitted.
    build_method:
        ``"bulk"`` (default) or ``"insert"`` — how to build the tree when one
        is not supplied.
    skyline_cache:
        Optional warm :class:`~repro.skyline.bbs.SkylineCache` for the
        supplied tree (the :mod:`repro.service` layer shares one across all
        queries on a dataset).  Purely a CPU memo — results and cost
        accounting are identical with and without it.
    """

    def __init__(
        self,
        dataset: Dataset,
        focal: Sequence[float] | np.ndarray | int,
        *,
        tree: Optional[RStarTree] = None,
        counters: Optional[CostCounters] = None,
        build_method: str = "bulk",
        skyline_cache: Optional[SkylineCache] = None,
    ) -> None:
        self.dataset = dataset
        self.focal_index: Optional[int] = (
            int(focal) if isinstance(focal, (int, np.integer)) else None
        )
        self.focal = dataset.validate_focal(focal)
        self.counters = counters if counters is not None else CostCounters()
        self.tree = tree if tree is not None else RStarTree.build(
            dataset.records, method=build_method
        )
        self.skyline_cache = skyline_cache
        self._partition: Optional[DominancePartition] = None

    # ----------------------------------------------------------- dominance
    def partition(self) -> DominancePartition:
        """Dominance partition of the dataset around the focal record (in memory)."""
        if self._partition is None:
            self._partition = partition_by_dominance(
                self.dataset, self.focal, exclude_index=self.focal_index
            )
        return self._partition

    def dominator_count(self) -> int:
        """Count dominators with aggregate range counting (charges page reads)."""
        upper = np.full(self.dataset.d, np.inf)
        in_box = self.tree.range_count(self.focal, upper, self.counters)
        duplicates = self.tree.range_count(self.focal, self.focal, self.counters)
        return in_box - duplicates

    def is_incomparable(self, record_id: int, point: np.ndarray) -> bool:
        """True when the record is incomparable to the focal record.

        Exact duplicates of the focal record and the focal record itself are
        excluded, matching the no-ties convention.
        """
        if self.focal_index is not None and record_id == self.focal_index:
            return False
        geq = point >= self.focal
        leq = point <= self.focal
        if geq.all() or leq.all():
            return False
        return True

    # ------------------------------------------------------------- full scan
    def scan_incomparable(self) -> List[Tuple[int, np.ndarray]]:
        """Read the whole dataset through the index and keep incomparable records.

        This is the access pattern of FCA and BA: every leaf page is read
        (linear I/O in ``n``), and the dominance filter is applied in memory.
        """
        results: List[Tuple[int, np.ndarray]] = []
        stack = [self.tree.root]
        while stack:
            node = stack.pop()
            self.tree.disk.read_page(node.page_id, self.counters)
            if node.is_leaf:
                for entry in node.entries:
                    if self.is_incomparable(entry.record_id, entry.point):
                        self.counters.records_accessed += 1
                        results.append((entry.record_id, entry.point))
            else:
                stack.extend(node.entries)
        return results

    # --------------------------------------------------------------- skyline
    def incremental_skyline(self) -> IncrementalSkyline:
        """Incremental BBS skyline over the incomparable records."""
        return IncrementalSkyline(
            self.tree,
            accept=self.is_incomparable,
            counters=self.counters,
            cache=self.skyline_cache,
        )
