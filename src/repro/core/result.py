"""Result types returned by the MaxRank algorithms.

A MaxRank answer has two components (paper, Definition 1): the best
achievable order ``k*`` of the focal record, and the set ``T`` of query-space
regions where that order is attained.  For the incremental variant
(Definition 2) the regions additionally cover every order up to ``k* + τ``.

Regions live in the *reduced* query space (dimensionality ``d - 1``).  Each
:class:`MaxRankRegion` carries a geometric description (an interval for
``d = 2``, a convex polytope otherwise), the cell order, the identities of
the records that outscore the focal record inside the region, and helpers to
produce representative full-dimensional query vectors — which is what an
application (market analysis, customer profiling) ultimately consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import AlgorithmError
from ..geometry.halfspace import lift_query_vector
from ..geometry.interval import Interval
from ..geometry.polytope import ConvexPolytope
from ..stats import CostCounters

__all__ = ["MaxRankRegion", "MaxRankResult"]

RegionGeometry = Union[Interval, ConvexPolytope]


@dataclass(frozen=True)
class MaxRankRegion:
    """One region of the query space where the focal record attains a given order.

    Attributes
    ----------
    geometry:
        :class:`Interval` (``d = 2``) or :class:`ConvexPolytope` (``d ≥ 3``)
        in the reduced query space.
    cell_order:
        Number of incomparable records outscoring the focal record inside
        the region (``|H_c|`` in the paper).
    order:
        The focal record's order inside the region
        (``|D+| + cell_order + 1``).
    outscored_by:
        Record ids of the incomparable records that outscore the focal
        record inside the region (``R_c``), when known.
    """

    geometry: RegionGeometry
    cell_order: int
    order: int
    outscored_by: Tuple[int, ...] = ()

    @property
    def reduced_dim(self) -> int:
        """Dimensionality of the reduced query space the region lives in."""
        if isinstance(self.geometry, Interval):
            return 1
        return self.geometry.dim

    def representative_reduced_point(self) -> np.ndarray:
        """A point of the reduced query space strictly inside the region."""
        if isinstance(self.geometry, Interval):
            return np.array([self.geometry.midpoint])
        return self.geometry.interior_point()

    def representative_query(self) -> np.ndarray:
        """A full ``d``-dimensional permissible query vector inside the region."""
        return lift_query_vector(self.representative_reduced_point())

    def sample_queries(self, count: int = 5, rng: Optional[np.random.Generator] = None
                       ) -> List[np.ndarray]:
        """Sample ``count`` permissible query vectors from the region."""
        rng = rng or np.random.default_rng(0)
        if isinstance(self.geometry, Interval):
            low, high = self.geometry.low, self.geometry.high
            picks = rng.uniform(low, high, size=count)
            return [lift_query_vector(np.array([value])) for value in picks]
        points = self.geometry.sample(count, rng=rng)
        return [lift_query_vector(point) for point in points]

    def contains_query(self, query: Sequence[float] | np.ndarray) -> bool:
        """True when the (full-dimensional) query vector falls inside the region."""
        q = np.asarray(query, dtype=float).ravel()
        total = float(q.sum())
        if total <= 0:
            return False
        reduced = q[:-1] / total
        if isinstance(self.geometry, Interval):
            return self.geometry.contains(float(reduced[0]))
        return self.geometry.contains(reduced)

    def volume(self) -> float:
        """Measure of the region in the reduced query space (length / area / volume)."""
        if isinstance(self.geometry, Interval):
            return self.geometry.length
        return self.geometry.volume()


@dataclass
class MaxRankResult:
    """Complete answer of a MaxRank / iMaxRank query.

    Attributes
    ----------
    k_star:
        Best order achievable by the focal record over all permissible
        query vectors.
    regions:
        The regions of the query space; for ``tau = 0`` they all have
        ``order == k_star``, for iMaxRank orders range up to ``k_star + tau``.
    dominator_count:
        ``|D+|`` — number of records dominating the focal record.
    minimum_cell_order:
        ``k_star - dominator_count - 1``; the minimum arrangement cell order.
    tau:
        The iMaxRank slack used (0 for plain MaxRank).
    algorithm:
        Name of the algorithm that produced the result.
    counters:
        Cost counters accumulated while processing the query.
    cpu_seconds:
        Wall-clock processing time.
    focal:
        Coordinates of the focal record.
    materialised_ids:
        Ids of every record whose half-space the computation materialised
        (staged or expanded) — the answer's *provenance scope*.  A record
        outside this set provably never influenced the reported regions, so
        the mutable service layer uses the scope to decide whether an
        insert/delete can leave a cached answer byte-identical (see
        :meth:`repro.service.cache.QueryCache`).  ``None`` when the
        producing algorithm does not track provenance (BA, FCA, the
        brute-force oracles, tau-monotone derivations); scope-less answers
        are always conservatively invalidated.
    """

    k_star: int
    regions: List[MaxRankRegion]
    dominator_count: int
    minimum_cell_order: int
    tau: int
    algorithm: str
    counters: CostCounters = field(default_factory=CostCounters)
    cpu_seconds: float = 0.0
    focal: Optional[np.ndarray] = None
    materialised_ids: Optional[frozenset] = None

    def __post_init__(self) -> None:
        if self.k_star < 1:
            raise AlgorithmError(f"k_star must be at least 1, got {self.k_star}")
        if self.tau < 0:
            raise AlgorithmError(f"tau must be non-negative, got {self.tau}")

    # ---------------------------------------------------------------- queries
    @property
    def region_count(self) -> int:
        """``|T|`` — number of reported regions."""
        return len(self.regions)

    @property
    def io_cost(self) -> int:
        """Simulated page accesses charged while answering the query."""
        return self.counters.page_reads

    def regions_at(self, order: int) -> List[MaxRankRegion]:
        """Regions where the focal record attains exactly ``order``."""
        return [region for region in self.regions if region.order == order]

    def best_regions(self) -> List[MaxRankRegion]:
        """Regions where the focal record attains ``k_star``."""
        return self.regions_at(self.k_star)

    def total_volume(self) -> float:
        """Total reduced-query-space measure of all reported regions."""
        return float(sum(region.volume() for region in self.regions))

    def representative_queries(self) -> List[np.ndarray]:
        """One representative permissible query vector per region."""
        return [region.representative_query() for region in self.regions]

    def summary(self) -> str:
        """One-line human-readable summary (used by the examples)."""
        return (
            f"{self.algorithm}: k*={self.k_star} "
            f"(dominators={self.dominator_count}, min cell order={self.minimum_cell_order}), "
            f"|T|={self.region_count}, tau={self.tau}, "
            f"cpu={self.cpu_seconds:.3f}s, io={self.io_cost} pages"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MaxRankResult({self.summary()})"
