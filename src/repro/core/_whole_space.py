"""Helper for the degenerate case with no incomparable records.

When every record either dominates or is dominated by the focal record, the
arrangement of incomparable half-spaces is empty and the focal record attains
order ``|D+| + 1`` everywhere in the permissible query space.  Both BA and AA
report the whole space as the single MaxRank region in that case.
"""

from __future__ import annotations

import numpy as np

from ..geometry.halfspace import reduced_space_constraints
from ..geometry.polytope import ConvexPolytope
from .result import MaxRankRegion

__all__ = ["whole_space_region"]


def whole_space_region(reduced_dim: int, dominator_count: int) -> MaxRankRegion:
    """The entire permissible reduced query space as a single region."""
    geometry = ConvexPolytope(
        reduced_space_constraints(reduced_dim), np.zeros(reduced_dim), np.ones(reduced_dim)
    )
    return MaxRankRegion(
        geometry=geometry,
        cell_order=0,
        order=dominator_count + 1,
        outscored_by=(),
    )
