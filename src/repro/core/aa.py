"""Advanced approach (AA) for MaxRank in general dimensionality (paper, Section 6).

AA avoids BA's fatal cost — reading and indexing *every* incomparable record —
by exploiting dominance among the incomparable records themselves.  If ``r``
dominates ``r'`` then the half-space of ``r'`` is contained in that of ``r``,
so ``r'`` cannot matter before ``r`` does.  AA therefore maintains a *mixed
arrangement* containing one *augmented* half-space per record on the skyline
of the not-yet-expanded incomparable records (computed and maintained
incrementally with BBS), plus the *singular* half-spaces of records already
expanded.

Each iteration (Algorithm 1) identifies the minimum-order cells of the mixed
arrangement.  Cells contained only in singular half-spaces are accurate and
enter the result; cells contained in some augmented half-space require those
half-spaces to be expanded — the record becomes singular, is removed from the
skyline, and the records it implicitly subsumed surface as new augmented
half-spaces.  AA terminates when every competitive cell is accurate, having
typically accessed only a small fraction of the incomparable records.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..data.dataset import Dataset
from ..engine.deadline import Deadline
from ..engine.executors import LeafTaskExecutor, resolve_executor
from ..errors import AlgorithmError
from ..geometry.halfspace import halfspace_for_record
from ..index.rstar import RStarTree
from ..quadtree.quadtree import AugmentedQuadTree
from ..skyline.bbs import SkylineCache
from ..stats import CostCounters
from .accessor import DataAccessor
from .cells import CellRecord, collect_cells, region_for_cell
from .result import MaxRankResult
from ._whole_space import whole_space_region

__all__ = ["aa_maxrank"]

#: Safety cap on AA iterations (each iteration expands at least one
#: half-space, so the cap is never reached for valid inputs).
_MAX_ITERATIONS = 1_000_000


def aa_maxrank(
    dataset: Dataset,
    focal: Sequence[float] | np.ndarray | int,
    *,
    tau: int = 0,
    tree: Optional[RStarTree] = None,
    counters: Optional[CostCounters] = None,
    split_threshold: Optional[int] = None,
    max_depth: Optional[int] = None,
    split_policy: str = "static",
    use_pairwise: bool = True,
    use_planar: bool = False,
    executor: Optional[LeafTaskExecutor] = None,
    skyline_cache: Optional[SkylineCache] = None,
    deadline: Optional[Deadline] = None,
) -> MaxRankResult:
    """Answer a MaxRank / iMaxRank query with the advanced approach (``d ≥ 3``).

    AA (paper, Section 6, Algorithm 1) iterates over a *mixed arrangement*
    of augmented and singular half-spaces, expanding augmented half-spaces
    only when a candidate minimum-order cell depends on them; it typically
    accesses a small fraction of the incomparable records, which is its
    advantage over :func:`repro.core.ba.ba_maxrank`.  Iterations reuse
    within-leaf state incrementally: only leaves whose partial set grew are
    re-enumerated, seeded with their previous witness points, pairwise
    conflict masks and surviving-prefix frontier (see
    :func:`repro.core.cells.collect_cells`).

    Parameters
    ----------
    dataset, focal:
        The dataset ``D`` (``d ≥ 3``) and focal record ``p`` (index or
        coordinates).
    tau:
        iMaxRank slack ``τ ≥ 0``; 0 gives plain MaxRank.
    tree:
        Optional pre-built R*-tree over ``dataset.records``.
    counters:
        Optional :class:`~repro.stats.CostCounters` to accumulate into.
    split_threshold:
        Quad-tree leaf split threshold (ablation A2); ``None`` picks the
        dimension-aware default.
    max_depth:
        Quad-tree depth cap; ``None`` picks the dimension-aware default and
        ``0`` keeps the whole reduced space as one fat leaf — the
        ``engine="planar-global"`` whole-space mode at ``d = 3``.
    split_policy:
        ``"static"`` (default) or ``"cost"`` — see
        :class:`~repro.quadtree.quadtree.AugmentedQuadTree`.  ``k*`` and
        the covered regions are policy-invariant; only the leaf-fragment
        granularity of the reported regions differs.
    use_pairwise:
        Enable the pairwise binary constraints of Section 5.2 (ablation A1
        switches them off).  On by default: the LP-free pair analysis
        compiles into the conflict bitmasks that drive prefix-pruned
        candidate generation, so forbidden bit combinations are never even
        enumerated.  Ablation A1 in ``benchmarks/`` quantifies the
        trade-off.
    use_planar:
        Enable the planar-arrangement sweep inside leaves (``d = 3`` only;
        see :func:`repro.core.aa3d.aa3d_maxrank` and
        :mod:`repro.geometry.planar`).  Results are bit-identical to the
        generic path.  Off by default — the :func:`repro.core.maxrank.maxrank`
        façade switches it on automatically at ``d = 3``.
    executor:
        Optional :class:`~repro.engine.executors.LeafTaskExecutor` running
        the independent within-leaf probes of each scan level (e.g. a
        process pool; see :mod:`repro.engine`).  ``None`` selects the
        serial in-process path, unless the ``REPRO_JOBS`` environment
        variable forces a shared pool.  Results and counters are
        bit-identical across executors.
    skyline_cache:
        Optional warm :class:`~repro.skyline.bbs.SkylineCache` for ``tree``
        (shared across queries by :mod:`repro.service`).  A pure CPU memo
        for the BBS passes; results and engine-invariant counters are
        identical with and without it.
    deadline:
        Optional wall-clock budget (:class:`~repro.engine.deadline.Deadline`).
        Checked at the start, once per AA iteration, once per scan priority
        level and inside the within-leaf funnel; expiry raises
        :class:`~repro.errors.QueryTimeoutError` carrying the partial
        counters.  ``None`` disables every checkpoint (zero overhead).

    Returns
    -------
    MaxRankResult
        ``k*``, the accurate minimum-order regions ``T`` (orders up to the
        minimum plus ``tau``), and the cost report; ``algorithm`` is
        ``"AA"``.

    Raises
    ------
    AlgorithmError
        When ``d < 3`` (use :func:`repro.core.aa2d.aa2d_maxrank`) or
        ``tau < 0``.
    """
    if dataset.d < 3:
        raise AlgorithmError(
            f"AA requires d >= 3 (use aa2d_maxrank for d = 2), got d = {dataset.d}"
        )
    if tau < 0:
        raise AlgorithmError(f"tau must be non-negative, got {tau}")
    start = time.perf_counter()
    executor = resolve_executor(executor)
    accessor = DataAccessor(
        dataset, focal, tree=tree, counters=counters, skyline_cache=skyline_cache
    )
    counters = accessor.counters
    if deadline is not None:
        deadline.check(counters, "aa_start")

    dominators = accessor.dominator_count()
    reduced_dim = dataset.d - 1
    quadtree = AugmentedQuadTree(
        reduced_dim,
        split_threshold=split_threshold,
        max_depth=max_depth,
        split_policy=split_policy,
        counters=counters,
    )
    skyline = accessor.incremental_skyline()

    record_to_hid: Dict[int, int] = {}
    augmented_ids: Set[int] = set()
    staged: List = []

    def stage_record(record_id: int, point: np.ndarray) -> None:
        """Stage the (augmented) half-space of a newly exposed skyline record."""
        if record_id in record_to_hid:
            return
        record_to_hid[record_id] = -1  # reserved; real id assigned on flush
        staged.append(
            (record_id, halfspace_for_record(
                point, accessor.focal, record_id=record_id, augmented=True
            ))
        )

    def flush_staged() -> None:
        """Bulk-insert every staged half-space with one tree descent.

        The executor is threaded through so the *initial* flush — a cold
        build — can fan the split cascade out to the pool; later
        (incremental) flushes fail the tree's cold-build gate and stay
        serial automatically.
        """
        if not staged:
            return
        ids = quadtree.insert_bulk(
            [halfspace for _, halfspace in staged], executor=executor
        )
        for (record_id, _), hid in zip(staged, ids):
            record_to_hid[record_id] = hid
            augmented_ids.add(hid)
        staged.clear()

    with counters.timer("skyline"):
        for member in skyline.compute():
            stage_record(member.record_id, member.point)
    # The initial build gets its own timer (separate from the BBS skyline
    # pass above) so `build_wall_fraction` means the same thing for AA and
    # BA; expansion-time flushes remain accounted to the iteration they
    # serve.
    with counters.timer("quadtree_build"):
        flush_staged()

    if len(quadtree) == 0:
        regions = [whole_space_region(reduced_dim, dominators)]
        return MaxRankResult(
            k_star=dominators + 1,
            regions=regions,
            dominator_count=dominators,
            minimum_cell_order=0,
            tau=tau,
            algorithm="AA",
            counters=counters,
            cpu_seconds=time.perf_counter() - start,
            focal=accessor.focal,
            materialised_ids=frozenset(),
        )

    best_accurate: Optional[int] = None
    final_cells: List[CellRecord] = []
    leaf_cache: dict = {}

    with counters.timer("within_leaf"):
        for _ in range(_MAX_ITERATIONS):
            counters.iterations += 1
            if deadline is not None:
                deadline.check(counters, "aa_iteration")
            scan_best, cells = collect_cells(
                quadtree,
                tau=tau,
                use_pairwise=use_pairwise,
                use_planar=use_planar,
                counters=counters,
                cache=leaf_cache,
                executor=executor,
                deadline=deadline,
            )
            if scan_best is None:
                break
            bound = scan_best + tau
            if best_accurate is not None:
                bound = min(scan_best, best_accurate) + tau
            candidates = [cell for cell in cells if cell.order <= bound]
            accurate = [
                cell for cell in candidates if not (cell.containing_ids & augmented_ids)
            ]
            inaccurate = [
                cell for cell in candidates if cell.containing_ids & augmented_ids
            ]
            if accurate:
                best = min(cell.order for cell in accurate)
                if best_accurate is None or best < best_accurate:
                    best_accurate = best
            to_expand: Set[int] = set()
            for cell in inaccurate:
                to_expand.update(cell.containing_ids & augmented_ids)
            if not to_expand:
                limit = (best_accurate if best_accurate is not None else scan_best) + tau
                final_cells = [cell for cell in candidates if cell.order <= limit]
                break
            with counters.timer("expansion"):
                for hid in to_expand:
                    augmented_ids.discard(hid)
                    halfspace = quadtree.halfspace(hid)
                    quadtree.replace(hid, halfspace.with_flags(augmented=False))
                    counters.halfspaces_expanded += 1
                    record_id = halfspace.record_id
                    if record_id is None:
                        continue
                    for member in skyline.exclude(record_id):
                        stage_record(member.record_id, member.point)
                flush_staged()

    if not final_cells:
        raise AlgorithmError(
            "AA terminated without locating any accurate arrangement cell"
        )

    minimum_order = min(cell.order for cell in final_cells)
    regions = [region_for_cell(quadtree, cell, dominators) for cell in final_cells]
    return MaxRankResult(
        k_star=dominators + minimum_order + 1,
        regions=regions,
        dominator_count=dominators,
        minimum_cell_order=minimum_order,
        tau=tau,
        algorithm="AA",
        counters=counters,
        cpu_seconds=time.perf_counter() - start,
        focal=accessor.focal,
        materialised_ids=frozenset(record_to_hid),
    )
