"""Advanced approach specialised for two dimensions (paper, Section 6.3).

For ``d = 2`` the reduced query space is the 1-dimensional interval
``q_1 ∈ (0, 1)`` and every incomparable record maps to a *half-line*
``q_1 > v`` (direction →) or ``q_1 < v`` (direction ←).  The mixed
arrangement is therefore just a sorted list of ⟨value, direction⟩ pairs, and
cell orders are obtained with a single left-to-right scan.

Everything else mirrors the general advanced approach: only the records on
the (incrementally maintained) skyline of the not-yet-expanded incomparable
records are reflected in the arrangement; minimum-order cells contained only
in singular half-lines are final; augmented half-lines containing candidate
cells are expanded, exposing the records previously subsumed under them.
Compared to FCA this touches far fewer records and far fewer disk pages
(Figure 11).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..data.dataset import Dataset
from ..engine.deadline import Deadline
from ..errors import AlgorithmError
from ..geometry.halfspace import halfspace_for_record
from ..geometry.interval import Interval
from ..index.rstar import RStarTree
from ..skyline.bbs import SkylineCache
from ..stats import CostCounters
from .accessor import DataAccessor
from .result import MaxRankRegion, MaxRankResult

__all__ = ["aa2d_maxrank", "SortedHalflineArrangement"]

_MIN_INTERVAL = 1e-12


@dataclass
class _Halfline:
    """A half-line of the 1-D reduced query space."""

    halfline_id: int
    record_id: int
    value: float
    rightward: bool      #: True for ``q_1 > value`` (→), False for ``q_1 < value`` (←)
    augmented: bool


@dataclass(frozen=True)
class _Cell1D:
    """A cell (interval) of the 1-D mixed arrangement."""

    interval: Interval
    order: int
    containing_ids: Tuple[int, ...]


class SortedHalflineArrangement:
    """The 1-D mixed arrangement: a sorted list of half-lines over (0, 1)."""

    def __init__(self, counters: Optional[CostCounters] = None) -> None:
        self._halflines: Dict[int, _Halfline] = {}
        self._next_id = 0
        self._counters = counters

    def insert(self, record_id: int, value: float, rightward: bool, *, augmented: bool) -> int:
        """Insert a half-line and return its id."""
        halfline_id = self._next_id
        self._next_id += 1
        self._halflines[halfline_id] = _Halfline(
            halfline_id=halfline_id,
            record_id=record_id,
            value=float(value),
            rightward=bool(rightward),
            augmented=bool(augmented),
        )
        if self._counters is not None:
            self._counters.halfspaces_inserted += 1
        return halfline_id

    def mark_singular(self, halfline_id: int) -> None:
        """Mark an augmented half-line as singular (expanded)."""
        self._halflines[halfline_id].augmented = False

    def record_of(self, halfline_id: int) -> int:
        """Record id that induced the half-line."""
        return self._halflines[halfline_id].record_id

    def is_augmented(self, halfline_id: int) -> bool:
        """True while the half-line is still augmented."""
        return self._halflines[halfline_id].augmented

    def __len__(self) -> int:
        return len(self._halflines)

    def cells(self, *, collect_extra: int = 0) -> List[_Cell1D]:
        """Enumerate the competitive cells of the current arrangement.

        Cells are the maximal open intervals of (0, 1) delimited by the
        half-line boundary values; the order of a cell is the number of
        half-lines containing it.  Only cells whose order is at most the
        minimum order plus ``collect_extra`` are returned (they are the only
        ones the advanced approach ever looks at), and only for those is the
        containing-id set materialised — this keeps the per-iteration cost
        linear in the number of half-lines instead of quadratic.
        """
        halflines = list(self._halflines.values())
        boundaries = sorted(
            (h for h in halflines if 0.0 < h.value < 1.0),
            key=lambda h: (h.value, h.halfline_id),
        )
        # Half-lines whose boundary lies outside (0, 1) are constant over the
        # whole query space; they contribute to every cell or to none.
        always_active = [
            h.halfline_id
            for h in halflines
            if (h.rightward and h.value <= 0.0) or (not h.rightward and h.value >= 1.0)
        ]
        initial_active = set(always_active)
        initial_active.update(h.halfline_id for h in boundaries if not h.rightward)

        # First sweep: cell extents and orders only.
        raw: List[Tuple[float, float, int]] = []
        count = len(initial_active)
        previous = 0.0
        total = len(boundaries)
        for index in range(total + 1):
            value = boundaries[index].value if index < total else 1.0
            if value - previous > _MIN_INTERVAL:
                raw.append((previous, value, count))
                if self._counters is not None:
                    self._counters.cells_examined += 1
                    self._counters.nonempty_cells += 1
            if index < total:
                boundary = boundaries[index]
                count += 1 if boundary.rightward else -1
                previous = value
        if not raw:
            return []
        minimum = min(order for _, _, order in raw)
        bound = minimum + collect_extra

        # Second sweep: materialise the containing sets of competitive cells.
        cells: List[_Cell1D] = []
        active: Set[int] = set(initial_active)
        previous = 0.0
        position = 0
        for index in range(total + 1):
            value = boundaries[index].value if index < total else 1.0
            if value - previous > _MIN_INTERVAL:
                low, high, order = raw[position]
                position += 1
                if order <= bound:
                    cells.append(
                        _Cell1D(
                            interval=Interval(low, high),
                            order=order,
                            containing_ids=tuple(sorted(active)),
                        )
                    )
            if index < total:
                boundary = boundaries[index]
                if boundary.rightward:
                    active.add(boundary.halfline_id)
                else:
                    active.discard(boundary.halfline_id)
                previous = value
        return cells


def _halfline_parameters(point: np.ndarray, focal: np.ndarray, record_id: int
                         ) -> Tuple[float, bool]:
    """Map an incomparable record to its half-line ``(value, rightward)``."""
    halfspace = halfspace_for_record(point, focal, record_id=record_id)
    coefficient = float(halfspace.coefficients[0])
    return halfspace.offset / coefficient, coefficient > 0


def aa2d_maxrank(
    dataset: Dataset,
    focal: Sequence[float] | np.ndarray | int,
    *,
    tau: int = 0,
    tree: Optional[RStarTree] = None,
    counters: Optional[CostCounters] = None,
    skyline_cache: Optional[SkylineCache] = None,
    deadline: Optional[Deadline] = None,
) -> MaxRankResult:
    """Answer a MaxRank / iMaxRank query with the 2-dimensional advanced approach.

    ``skyline_cache`` is an optional warm
    :class:`~repro.skyline.bbs.SkylineCache` for ``tree`` (see
    :mod:`repro.service`); it memoises BBS traversal CPU only and leaves
    results and cost accounting unchanged.
    """
    if dataset.d != 2:
        raise AlgorithmError(f"AA-2D only supports d = 2 datasets, got d = {dataset.d}")
    if tau < 0:
        raise AlgorithmError(f"tau must be non-negative, got {tau}")
    start = time.perf_counter()
    accessor = DataAccessor(
        dataset, focal, tree=tree, counters=counters, skyline_cache=skyline_cache
    )
    counters = accessor.counters
    if deadline is not None:
        deadline.check(counters, "aa2d_start")

    dominators = accessor.dominator_count()
    skyline = accessor.incremental_skyline()
    arrangement = SortedHalflineArrangement(counters)
    record_to_halfline: Dict[int, int] = {}

    def add_record(record_id: int, point: np.ndarray) -> None:
        if record_id in record_to_halfline:
            return
        value, rightward = _halfline_parameters(point, accessor.focal, record_id)
        record_to_halfline[record_id] = arrangement.insert(
            record_id, value, rightward, augmented=True
        )

    with counters.timer("skyline"):
        for member in skyline.compute():
            add_record(member.record_id, member.point)

    best_accurate: Optional[int] = None
    final_cells: List[_Cell1D] = []

    with counters.timer("arrangement"):
        while True:
            counters.iterations += 1
            if deadline is not None:
                deadline.check(counters, "aa2d_iteration")
            cells = arrangement.cells(collect_extra=tau)
            if not cells:
                break
            scan_best = min(cell.order for cell in cells)
            # Accurate cells persist in the mixed arrangement, so the scan
            # minimum never exceeds the best accurate order found so far;
            # the collection bound is therefore simply ``scan_best + tau``.
            bound = scan_best + tau
            candidates = [cell for cell in cells if cell.order <= bound]
            accurate = [
                cell
                for cell in candidates
                if not any(arrangement.is_augmented(hid) for hid in cell.containing_ids)
            ]
            inaccurate = [cell for cell in candidates if cell not in accurate]
            if accurate:
                best = min(cell.order for cell in accurate)
                if best_accurate is None or best < best_accurate:
                    best_accurate = best
            to_expand: Set[int] = set()
            for cell in inaccurate:
                to_expand.update(
                    hid for hid in cell.containing_ids if arrangement.is_augmented(hid)
                )
            if not to_expand:
                limit = (best_accurate if best_accurate is not None else scan_best) + tau
                final_cells = [cell for cell in candidates if cell.order <= limit]
                break
            for halfline_id in to_expand:
                arrangement.mark_singular(halfline_id)
                counters.halfspaces_expanded += 1
                for member in skyline.exclude(arrangement.record_of(halfline_id)):
                    add_record(member.record_id, member.point)

    if not final_cells:
        # No incomparable records at all: the whole space is one region.
        final_cells = [_Cell1D(interval=Interval(0.0, 1.0), order=0, containing_ids=())]
        best_accurate = 0

    minimum_order = min(cell.order for cell in final_cells)
    regions = [
        MaxRankRegion(
            geometry=cell.interval,
            cell_order=cell.order,
            order=dominators + cell.order + 1,
            outscored_by=tuple(
                sorted(arrangement.record_of(hid) for hid in cell.containing_ids)
            ),
        )
        for cell in final_cells
    ]
    return MaxRankResult(
        k_star=dominators + minimum_order + 1,
        regions=regions,
        dominator_count=dominators,
        minimum_cell_order=minimum_order,
        tau=tau,
        algorithm="AA-2D",
        counters=counters,
        cpu_seconds=time.perf_counter() - start,
        focal=accessor.focal,
        materialised_ids=frozenset(record_to_halfline),
    )
