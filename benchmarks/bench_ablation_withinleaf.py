"""Ablation A1 — pairwise-constraint pruning inside quad-tree leaves.

The paper derives binary constraints between pairs of half-spaces whose
supporting hyperplanes do not intersect inside a leaf, and uses them to
dismiss bit-strings without running the half-space intersection.  In the
authors' C++/Qhull implementation each avoided intersection is expensive;
in this reproduction the per-cell feasibility test is a tiny LP, so the
pre-analysis (which itself runs the same LPs on every pair) is usually not
worth it.  The ablation quantifies that trade-off rather than assuming it.
"""

from __future__ import annotations

import time

from repro import CostCounters, generate_independent
from repro.core import aa_maxrank
from repro.experiments import format_table


def _run(use_pairwise: bool, n: int = 250, queries: int = 2):
    data = generate_independent(n, 4, seed=31)
    rows = []
    for focal in range(queries):
        counters = CostCounters()
        start = time.perf_counter()
        result = aa_maxrank(data, focal * 7 + 3, counters=counters, use_pairwise=use_pairwise)
        rows.append({
            "pairwise": use_pairwise,
            "focal": focal * 7 + 3,
            "cpu_s": time.perf_counter() - start,
            "cells_examined": counters.cells_examined,
            "lp_calls": counters.lp_calls,
            "k_star": result.k_star,
        })
    return rows


def test_ablation_pairwise_pruning(benchmark, scale):
    rows_off = _run(use_pairwise=False)
    rows_on = benchmark.pedantic(lambda: _run(use_pairwise=True), rounds=1, iterations=1)
    rows = rows_off + rows_on
    print()
    print(format_table(rows, ["pairwise", "focal", "cpu_s", "cells_examined", "lp_calls", "k_star"],
                       title="Ablation A1 — pairwise constraint pruning"))
    # Correctness must not depend on the optimisation.
    by_focal = {}
    for row in rows:
        by_focal.setdefault(row["focal"], set()).add(row["k_star"])
    assert all(len(values) == 1 for values in by_focal.values())
    # The pruning must reduce (or at least not increase) the number of
    # candidate cells that reach a feasibility test.
    cells_on = sum(row["cells_examined"] for row in rows_on)
    cells_off = sum(row["cells_examined"] for row in rows_off)
    assert cells_on <= cells_off
