"""Figure 8 — effect of dataset cardinality ``n`` at ``d = 4``.

Panels (a)/(b): CPU time and I/O of AA versus BA on IND data (BA only up to
its cardinality cap, exactly as the paper restricts BA to 10 K records).
Panels (c)/(d): CPU and I/O of AA on IND, COR and ANTI.
Panels (e)/(f): the ``k*`` and ``|T|`` values behind those costs.

Expected shape (paper): AA scales gracefully with ``n`` while BA blows up;
COR yields the largest ``k*`` with few regions, ANTI the smallest ``k*``
attained over the most regions, which is also why ANTI costs the most CPU.
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.experiments.figures import run_fig8_cardinality


def test_fig8_cardinality(benchmark, scale):
    """Regenerate every Figure 8 series and print them as one table."""
    rows = benchmark.pedantic(
        lambda: run_fig8_cardinality(scale, quiet=True), rounds=1, iterations=1
    )
    print()
    print(format_table(
        rows,
        ["label", "algorithm", "dataset", "n", "cpu_s", "io", "k_star", "regions"],
        title="Figure 8 — effect of cardinality n (d = 4)",
    ))
    aa_rows = [row for row in rows if row["algorithm"] == "aa"]
    ba_rows = [row for row in rows if row["algorithm"] == "ba"]
    assert aa_rows, "AA must be represented"
    assert ba_rows, "BA must be represented on the capped cardinalities"
    # Shape check (panel a/b): at the shared cardinality BA costs at least as
    # much CPU and I/O as AA.
    for ba in ba_rows:
        twin = next(r for r in aa_rows if r["n"] == ba["n"] and r["dataset"] == ba["dataset"])
        assert ba["io"] >= twin["io"]
