"""Figure 9 — effect of dimensionality ``d`` on AA and BA (IND data).

For ``d = 2`` the paper substitutes FCA for BA and the specialised 2-D AA for
AA; the driver does the same.  Expected shape: costs of both algorithms grow
with ``d`` (sharply for the CPU time, driven by the exploding ``|T|``), with
AA remaining far cheaper than BA at every dimensionality where BA finishes.
"""

from __future__ import annotations

import time

import numpy as np

from repro import generate, maxrank
from repro.experiments import format_table
from repro.experiments.figures import run_fig9_dimensionality
from repro.experiments.harness import select_focal_records
from repro.index.rstar import RStarTree


def test_fig9_dimensionality(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_fig9_dimensionality(scale, quiet=True), rounds=1, iterations=1
    )
    print()
    print(format_table(
        rows,
        ["label", "algorithm", "n", "d", "cpu_s", "io", "k_star", "regions"],
        title="Figure 9 — effect of dimensionality d (IND)",
    ))
    aa_like = [row for row in rows if row["algorithm"] in ("aa", "aa2d")]
    dims = sorted({row["d"] for row in aa_like})
    assert len(dims) >= 3
    # Shape check: |T| grows with dimensionality for the advanced approach.
    by_d = {row["d"]: row["regions"] for row in aa_like}
    assert by_d[dims[-1]] >= by_d[dims[0]]


def test_fig9_d3_engine_ab():
    """A/B of the d = 3 within-leaf engines: planar sweep vs generic.

    The two engines must be bit-identical (same ``k*``, same regions, same
    representative points); only the candidate-examination volume — and on
    fat-leaf workloads the wall-clock — differs.  The printed table records
    the comparison; the assertions pin the equivalence on every run.
    """
    dataset = generate("IND", 400, 3, seed=0)
    tree = RStarTree.build(dataset.records)
    focals = select_focal_records(dataset, 2, seed=0)
    rows = []
    results = {}
    for engine in ("planar", "generic"):
        start = time.perf_counter()
        results[engine] = [
            maxrank(dataset, focal, engine=engine, tau=2, tree=tree)
            for focal in focals
        ]
        rows.append({
            "engine": engine,
            "wall_s": time.perf_counter() - start,
            "k*": "/".join(str(r.k_star) for r in results[engine]),
            "|T|": "/".join(str(r.region_count) for r in results[engine]),
        })
    print()
    print(format_table(rows, title="Figure 9 — d = 3 engine A/B (IND, tau=2)"))
    for planar, generic in zip(results["planar"], results["generic"]):
        assert planar.k_star == generic.k_star
        assert planar.region_count == generic.region_count
        for a, b in zip(planar.regions, generic.regions):
            assert np.array_equal(
                a.representative_query(), b.representative_query()
            )
