"""Figure 9 — effect of dimensionality ``d`` on AA and BA (IND data).

For ``d = 2`` the paper substitutes FCA for BA and the specialised 2-D AA for
AA; the driver does the same.  Expected shape: costs of both algorithms grow
with ``d`` (sharply for the CPU time, driven by the exploding ``|T|``), with
AA remaining far cheaper than BA at every dimensionality where BA finishes.
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.experiments.figures import run_fig9_dimensionality


def test_fig9_dimensionality(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_fig9_dimensionality(scale, quiet=True), rounds=1, iterations=1
    )
    print()
    print(format_table(
        rows,
        ["label", "algorithm", "n", "d", "cpu_s", "io", "k_star", "regions"],
        title="Figure 9 — effect of dimensionality d (IND)",
    ))
    aa_like = [row for row in rows if row["algorithm"] in ("aa", "aa2d")]
    dims = sorted({row["d"] for row in aa_like})
    assert len(dims) >= 3
    # Shape check: |T| grows with dimensionality for the advanced approach.
    by_d = {row["d"]: row["regions"] for row in aa_like}
    assert by_d[dims[-1]] >= by_d[dims[0]]
