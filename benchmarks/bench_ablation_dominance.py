"""Ablation A3 — dominance pre-filtering for the baseline algorithms.

Section 5 prunes dominators and dominees of the focal record before building
the arrangement; only incomparable records induce half-spaces.  This ablation
compares FCA with and without the pruning (the unpruned variant processes a
score-line event for every record) to quantify how much of the baseline's
cost the dominance filter removes, and checks that the answer is identical.
"""

from __future__ import annotations

import time
from typing import List, Tuple

import numpy as np

from repro import generate_correlated, generate_independent
from repro.core.fca import fca_maxrank, score_line_events
from repro.experiments import format_table
from repro.geometry.halfspace import halfspace_for_record
from repro.errors import GeometryError


def _sweep_without_dominance_pruning(dataset, focal_index: int) -> Tuple[int, float]:
    """FCA-style sweep that maps *every* other record to a score-line event."""
    start = time.perf_counter()
    focal = dataset.record(focal_index)
    events: List[Tuple[int, np.ndarray]] = []
    always = 0
    pairs = []
    for record_id in range(dataset.n):
        if record_id == focal_index:
            continue
        try:
            halfspace_for_record(dataset.records[record_id], focal)
        except GeometryError:
            # Parallel score line: the record beats p everywhere or nowhere.
            if float(dataset.records[record_id].sum()) > float(focal.sum()):
                always += 1
            continue
        pairs.append((record_id, dataset.records[record_id]))
    events, initially_active = score_line_events(pairs, focal)
    active = len(initially_active) + always
    best = active
    for event in events:
        active += 1 if event.enters else -1
        best = min(best, active)
    return best + 1, time.perf_counter() - start


def test_ablation_dominance_prefilter(benchmark, scale):
    datasets = {
        "IND": generate_independent(4000, 2, seed=53),
        "COR": generate_correlated(4000, 2, seed=53),
    }
    rows = []

    def run():
        local = []
        for name, data in datasets.items():
            focal = 101
            start = time.perf_counter()
            pruned = fca_maxrank(data, focal)
            pruned_cpu = time.perf_counter() - start
            unpruned_k, unpruned_cpu = _sweep_without_dominance_pruning(data, focal)
            local.append({
                "dataset": name,
                "k_star": pruned.k_star,
                "k_star_unpruned": unpruned_k,
                "cpu_pruned_s": pruned_cpu,
                "cpu_unpruned_s": unpruned_cpu,
                "records_after_pruning": pruned.counters.records_accessed,
            })
        return local

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, ["dataset", "k_star", "k_star_unpruned",
                              "cpu_pruned_s", "cpu_unpruned_s"],
                       title="Ablation A3 — dominance pre-filtering (FCA, d = 2)"))
    for row in rows:
        assert row["k_star"] == row["k_star_unpruned"]
