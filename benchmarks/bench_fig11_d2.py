"""Figure 11 — FCA versus the 2-dimensional AA on IND / COR / ANTI (``d = 2``).

Expected shape (paper): FCA accesses and processes every incomparable record,
so AA-2D beats it clearly on I/O for all three distributions; the CPU gap is
narrower because AA-2D spends extra work on half-line expansions and skyline
updates.
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.experiments.figures import run_fig11_two_dimensions


def test_fig11_fca_vs_aa2d(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_fig11_two_dimensions(scale, quiet=True), rounds=1, iterations=1
    )
    print()
    print(format_table(rows, ["distribution", "algorithm", "cpu_s", "io", "k_star", "regions"],
                       title="Figure 11 — FCA vs AA in the special case d = 2"))
    for distribution in ("IND", "COR", "ANTI"):
        pair = {row["algorithm"]: row for row in rows if row["distribution"] == distribution}
        assert set(pair) == {"aa2d", "fca"}
        # Shape check: the two algorithms agree on the answer and AA-2D never
        # needs more I/O than the full-scan FCA.
        assert pair["aa2d"]["k_star"] == pair["fca"]["k_star"]
        assert pair["aa2d"]["io"] <= pair["fca"]["io"]
