"""Figure 12 (appendix) — MaxScore/MinScore ratio versus dimensionality (IND).

Expected shape (paper): the ratio between the best and the worst score in the
dataset collapses rapidly as ``d`` grows (the same loss-of-contrast effect
known from nearest-neighbour search), which is the paper's argument for
focusing MaxRank on low-dimensional data.
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.experiments.figures import run_fig12_score_ratio


def test_fig12_score_ratio(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_fig12_score_ratio(scale, quiet=True), rounds=1, iterations=1
    )
    print()
    print(format_table(rows, ["d", "ratio"],
                       title="Figure 12 — MaxScore/MinScore ratio vs dimensionality"))
    ratios = [row["ratio"] for row in rows]
    assert all(ratio >= 1.0 for ratio in ratios)
    # Shape check: monotone-ish collapse — the final ratio is well below the
    # d=2 ratio, and the first half of the sweep dominates the second half.
    assert ratios[-1] < ratios[0] / 3
    first_half = ratios[: len(ratios) // 2]
    second_half = ratios[len(ratios) // 2:]
    assert min(first_half) >= max(second_half) * 0.5
