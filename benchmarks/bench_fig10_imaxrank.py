"""Figure 10 — iMaxRank: CPU, I/O and ``|T|`` versus ``τ`` (IND and HOTEL).

Expected shape (paper): CPU time and the number of reported regions grow
substantially with ``τ`` (the result must cover every order up to
``k* + τ``), while the I/O cost grows only slightly, because the extra
records needed for larger ``τ`` mostly live on pages that were read anyway.
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.experiments.figures import run_fig10_imaxrank


def test_fig10_imaxrank(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_fig10_imaxrank(scale, quiet=True), rounds=1, iterations=1
    )
    print()
    print(format_table(rows, ["dataset", "tau", "cpu_s", "io", "regions", "k_star"],
                       title="Figure 10 — iMaxRank, effect of tau"))
    for name in ("IND", "HOTEL"):
        series = sorted((row for row in rows if row["dataset"] == name),
                        key=lambda row: row["tau"])
        assert len(series) >= 2
        # Shape checks: |T| is non-decreasing in tau and k* does not change.
        regions = [row["regions"] for row in series]
        assert regions == sorted(regions)
        assert len({row["k_star"] for row in series}) == 1
