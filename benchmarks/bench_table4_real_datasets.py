"""Table 4 — AA on the (simulated) real datasets HOTEL, HOUSE, NBA, PITCH, BAT.

Expected shape (paper): costs rise with dimensionality and cardinality;
HOTEL (4d) is the cheapest by far; NBA — less correlated than PITCH because
players of different positions trade off statistics — produces a larger
``|T|`` than PITCH despite having fewer records.
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.experiments.figures import run_table4_real_datasets


def test_table4_real_datasets(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_table4_real_datasets(scale, quiet=True), rounds=1, iterations=1
    )
    print()
    print(format_table(rows, ["dataset", "n", "k_star", "regions", "cpu_s", "io"],
                       title="Table 4 — AA on simulated real datasets"))
    by_name = {row["dataset"].split()[0]: row for row in rows}
    assert set(by_name) == {"HOTEL", "HOUSE", "NBA", "PITCH", "BAT"}
    # Shape check: the 4-dimensional HOTEL is the cheapest to process.
    assert by_name["HOTEL"]["cpu_s"] <= min(row["cpu_s"] for row in rows)
