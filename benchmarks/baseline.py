#!/usr/bin/env python
"""Benchmark regression harness for the MaxRank query stack.

Runs a fixed workload matrix (subsets of the paper's Figure 8 / Figure 9
sweeps) and records, per configuration: wall-clock, per-query CPU, simulated
I/O, the exact result fingerprint (``k*``, region counts, minimum cell
orders per query) and the screen→LP funnel counters of the batched
feasibility engine.  The numbers are written to ``BENCH_maxrank.json`` at
the repository root, which is committed so every PR carries its performance
trajectory.

Modes
-----
``python benchmarks/baseline.py``
    Run the full matrix and print a report (no file written).
``python benchmarks/baseline.py --update``
    Run and rewrite the ``current`` section of ``BENCH_maxrank.json``
    (the ``pre_pr`` section, when present, is preserved).
``python benchmarks/baseline.py --compare``
    Run and fail (exit 1) when, against the committed baseline:

    * any result fingerprint differs (``k*`` / region counts / minimum cell
      orders are required to be bit-identical), or
    * a deterministic work counter (LP calls, cells examined, candidates
      generated) regresses by more than 15 %, or
    * calibrated wall-clock regresses by more than 35 % on a configuration
      whose committed wall-clock is at least half a second.  Wall-clock is
      normalised by a short CPU calibration loop measured on both sides;
      the normalisation transfers only approximately across hosts, so the
      wall gate is deliberately loose — the deterministic counters are the
      hard gate.
``--quick``
    Restrict any of the modes above to the quick subset (used by CI).
``--jobs N``
    Run the within-leaf execution engine on an ``N``-worker process pool
    (see :mod:`repro.engine`).  The engine is bit-identical to the serial
    path — same results, same funnel counters — so ``--compare --jobs N``
    checks the parallel path against the committed *serial* baseline and
    must pass the same fingerprint and counter gates.
``--engine planar|generic``
    A/B switch for the ``d = 3`` configurations: force the planar-arrangement
    sweep or the generic combinatorial generator (the default is the
    auto-dispatch, i.e. planar at ``d = 3``).  Results are bit-identical, so
    ``--compare --engine planar`` stays sound; ``--engine generic`` exists to
    quantify what the sweep saves.  ANTI ``d = 3`` configurations are skipped
    under ``--engine generic`` — the combinatorial enumeration is infeasible
    there (hours instead of sub-second), which is precisely the blow-up the
    planar engine removes.

The matrix also carries a ``service/`` workload family: each configuration
answers a 16-query batch (8 unique focal records, each asked twice) both
*cold* — the standalone shape, one fresh ``maxrank()`` + R*-tree build per
query — and *warm* through one :class:`repro.service.MaxRankService`
(shared tree, warm skyline state, LRU result cache; ``--jobs`` additionally
runs the batch through whole-query process parallelism).  Both sides are
asserted bit-identical before recording, and ``--compare`` gates the
amortisation counters (``cache_hits``, ``skyline_reused``) alongside the
work counters, so losing the service's reuse fails CI like losing a pruning
step does.

A ``build/`` workload family watches quad-tree construction: one full-query
configuration that pins the cost-model split policy's recovery of the
small-``n`` ``d = 4`` shape, and two cold-start construction-only
configurations (``n = 4k`` and ``n = 50k``, explicit ``max_depth``) that
time ``insert_bulk`` alone.  Their construction counters
(``halfspaces_inserted`` / ``nodes_created`` / ``splits_performed``) are
serial/parallel-invariant by the parallel-identity contract and are gated
*exactly* by ``--compare``; ``--family build`` restricts a run to this
family (CI smokes it with ``--jobs 2``).

An ``update/`` workload family exercises the mutable service: a seeded
80/20 query/mutate sequence (inserts and deletes interleaved with cached
queries) against one long-lived service.  Before anything is recorded,
every unique focal of the *mutated* dataset is re-asked and asserted
bit-identical to a cold service freshly built over the final records — the
same oracle the mutation-differential test harness uses.  The scoped
cache-invalidation outcome (``invalidated`` / ``retained`` / ``inserts`` /
``deletes``) is deterministic for the frozen sequence, so ``--compare``
gates those counters *exactly*: losing retention (over-invalidation) or
eviction (a vacuous predicate) fails CI like a lost pruning step does.

A ``serve/`` workload family drives the *network* front end closed-loop:
a real :class:`~repro.service.ThreadedLineServer` on a kernel-picked port,
``clients`` concurrent socket clients issuing a seeded, skewed (hot-focal)
request stream over two shards routed through the consistent-hash /
admission stack.  Every response payload is compared against a standalone
``maxrank()`` reference before anything is recorded, exactly-once
computation per unique (shard, focal, tau) key is asserted, and the
single-flight ``coalesced`` counter must be positive (the hot key is
barrier-synchronised so all clients provably collide).  Latency p50/p99
and qps are recorded for the trajectory; the deterministic gates are the
work counters and the exact ``admitted`` / ``queries_computed`` totals —
``serve/`` keys are exempt from the calibrated wall gate because a
closed-loop latency benchmark measures scheduling, not algorithm work.

An ``obs/`` workload family gates the observability stack: the same seeded
queries answered untraced and fully traced (a live :class:`repro.obs.Tracer`
riding the engine's counter hooks, producing a complete span tree per
query).  Tracing that changes an answer or a counter is a bug, not a cost,
so both gates are *exact* — every result fingerprint and every non-time
counter must be bit-identical between the two passes — and the recorded
``wall_s`` is the untraced side, so the calibrated wall gate watches the
disabled-path overhead (one ``is None`` check per instrumented site) that
every other configuration also carries.  ``overhead_ratio`` records the
traced/untraced wall ratio for the trajectory; ``--family obs`` restricts a
run to this family (the CI obs smoke).

The workload matrix is intentionally frozen: the ``--compare`` mode is only
sound when both sides ran identical configurations.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.accessor import DataAccessor            # noqa: E402
from repro.core.maxrank import maxrank                  # noqa: E402
from repro.data.generators import generate              # noqa: E402
from repro.engine.executors import make_executor        # noqa: E402
from repro.experiments.harness import run_batch, select_focal_records  # noqa: E402
from repro.experiments.reporting import format_table, screen_funnel  # noqa: E402
from repro.geometry.halfspace import halfspace_for_record  # noqa: E402
from repro.geometry.seidel import solve_lp              # noqa: E402
from repro.index.rstar import RStarTree                 # noqa: E402
from repro.quadtree.quadtree import AugmentedQuadTree   # noqa: E402
from repro.service.core import MaxRankService, result_fingerprint  # noqa: E402
from repro.stats import CostCounters                    # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_maxrank.json"
SCHEMA = 1
#: Maximum tolerated regression for the deterministic work counters.
REGRESSION_TOLERANCE = 0.15
#: Maximum tolerated regression for calibrated wall-clock.  Wider than the
#: counter tolerance: the calibration loop transfers a host's speed only
#: approximately (the Seidel-LP / numpy speed ratio differs between CPU
#: generations), so the hard regression gate is the deterministic counters
#: and the wall gate only catches gross slowdowns.
WALL_TOLERANCE = 0.35
#: Configurations whose committed wall-clock is below this are exempt from
#: the wall gate — sub-half-second runs are dominated by noise, and their
#: work counters are checked exactly anyway.
WALL_FLOOR_S = 0.5


@dataclass(frozen=True)
class BenchConfig:
    """One frozen benchmark configuration."""

    key: str
    distribution: str
    n: int
    d: int
    queries: int
    quick: bool = False
    tau: int = 0


CONFIGS: List[BenchConfig] = [
    BenchConfig("quick/fig9/d=4", "IND", 150, 4, 1, quick=True),
    BenchConfig("fig9/d=3", "IND", 400, 3, 2, quick=True),
    BenchConfig("fig9/d=4", "IND", 300, 4, 2, quick=True),
    BenchConfig("fig9/d=5", "IND", 300, 5, 1),
    BenchConfig("fig8/IND/n=600", "IND", 600, 4, 2),
    BenchConfig("fig8/COR/n=600", "COR", 600, 4, 2),
    BenchConfig("fig8/ANTI/n=600", "ANTI", 600, 4, 2),
    # d = 3 on anticorrelated data: the depth-capped fat leaves make the
    # combinatorial within-leaf enumeration infeasible (>500 s per batch);
    # only the planar sweep keeps this configuration sub-second, which is
    # why it is in the committed matrix.
    BenchConfig("fig8/ANTI/d=3", "ANTI", 600, 3, 2),
    # iMaxRank at d = 3: tau widens the explored Hamming weights, the
    # regime where the planar sweep replaces the C(m, w) enumeration.
    BenchConfig("fig10/d=3/tau=3", "IND", 400, 3, 2, tau=3),
]

#: Work counters whose regression fails a --compare run.  They are
#: deterministic for a fixed workload, so the tolerance only absorbs
#: intentional small algorithm adjustments, not machine noise.
#: ``candidates_generated`` guards the generation volume of the
#: prefix-pruned DFS: a change that re-materialises pruned candidates fails
#: here even when wall-clock happens to absorb it.
WORK_COUNTERS = (
    "lp_calls",
    "cells_examined",
    "candidates_generated",
    "lines_inserted",
    "faces_enumerated",
)

#: Service-layer amortisation counters gated on the ``service/`` workload
#: family: these are deterministic "the service skipped work" tallies, so a
#: *drop* (fewer cache hits, less warm-skyline reuse than committed) is the
#: regression.  ``skyline_reused`` is only gated on serial runs — under
#: ``--jobs`` each pool worker forks with a cold cache, so its value depends
#: on worker scheduling.
SERVICE_MIN_COUNTERS = ("cache_hits", "skyline_reused")

#: Robustness counters that must stay at their committed value (normally 0)
#: on the fault-free benchmark workload: a worker retry, a serial
#: degradation or a deadline check on the happy path means fault-handling
#: machinery leaked into the no-fault code path.  Entries absent from an
#: older committed baseline default to 0, so the gate binds without
#: regenerating the baseline file.
ROBUSTNESS_ZERO_COUNTERS = ("worker_retries", "degraded_batches", "deadline_checks")


@dataclass(frozen=True)
class ServiceBenchConfig:
    """One frozen service-workload configuration: a batch of ``batch``
    queries over ``unique`` distinct focal records (the repetition is the
    point — it is what the result cache amortises)."""

    key: str
    distribution: str
    n: int
    d: int
    batch: int = 16
    unique: int = 8
    tau: int = 0
    quick: bool = False


SERVICE_CONFIGS: List[ServiceBenchConfig] = [
    ServiceBenchConfig("service/fig9/d=3", "IND", 400, 3, quick=True),
    ServiceBenchConfig("service/fig9/d=4", "IND", 300, 4, quick=True),
    ServiceBenchConfig("service/fig9/d=5", "IND", 300, 5),
    ServiceBenchConfig("service/fig8/ANTI", "ANTI", 600, 4),
]


@dataclass(frozen=True)
class UpdateBenchConfig:
    """One frozen mutable-service workload: ``ops`` operations, every fifth
    a mutation (inserts and deletes interleaved), the rest queries cycling
    over ``unique`` focal records so the result cache has entries for the
    scoped invalidation to rule on."""

    key: str
    distribution: str
    n: int
    d: int
    ops: int = 30
    unique: int = 8
    tau: int = 1
    quick: bool = False


UPDATE_CONFIGS: List[UpdateBenchConfig] = [
    UpdateBenchConfig("update/fig9/d=3", "IND", 400, 3, quick=True),
    UpdateBenchConfig("update/fig8/ANTI", "ANTI", 300, 4),
]

#: Counters gated *exactly* on the ``update/`` family: the mutation
#: sequence is frozen and scoped invalidation is deterministic, so any
#: drift — retaining less (lost scoping) or evicting less (unsound
#: predicate or stale serves) — is a real behavioural change.
UPDATE_EXACT_COUNTERS = ("inserts", "deletes", "invalidated", "retained")


@dataclass(frozen=True)
class BuildBenchConfig:
    """One frozen construction-focused configuration.

    ``query=True`` runs a full AA query batch (so the record carries the
    end-to-end fingerprint and funnel alongside the construction volume);
    ``query=False`` measures the cold quad-tree build alone: scan the
    incomparable records, derive their half-spaces, time ``insert_bulk``.
    ``max_depth`` must be explicit on the large-``n`` cold builds — the
    dim-aware default depth is sized for the paper's small-``n`` panels and
    saturates toward millions of nodes at ``n = 50k``.
    """

    key: str
    distribution: str
    n: int
    d: int
    split_policy: str = "static"
    query: bool = False
    quick: bool = False
    max_depth: Optional[int] = None
    split_threshold: Optional[int] = None


BUILD_CONFIGS: List[BuildBenchConfig] = [
    # The PR 3 threshold-rebalance regression shape: under the cost policy
    # this must come back under the committed wall/LP numbers (the static
    # numbers live in quick/fig9/d=4).
    BuildBenchConfig("build/quick/fig9/d=4/cost", "IND", 150, 4,
                     split_policy="cost", query=True, quick=True),
    # Cold-start construction at scale: wall is dominated by the split
    # cascade, which is what --jobs parallelises.  Depth is capped at 5 —
    # a full 8-ary depth-5 tree is ≤ 37k nodes, so node volume stays
    # deterministic and exact-gated while the build is long enough to
    # parallelise.
    BuildBenchConfig("build/cold/d=4/n=4000", "IND", 4000, 4,
                     max_depth=5, quick=True),
    BuildBenchConfig("build/cold/d=4/n=50000", "IND", 50000, 4, max_depth=5),
]

@dataclass(frozen=True)
class ServeBenchConfig:
    """One frozen closed-loop network-serving workload.

    Two shards (IND at dimension ``d``, IND at ``d + 1``) are served by one
    in-process :class:`ThreadedLineServer`; ``clients`` socket clients each
    issue ``requests_per_client`` requests.  The request *plans* are seeded
    per client: the first request of every client is the same hot key
    (barrier-synchronised, so single-flight provably coalesces) and each
    later request picks the hot key with probability ``hot_share`` or a
    uniform cold key otherwise — the skewed interactive shape the admission
    layer exists for.  The set of unique keys is deterministic, so the
    exactly-once totals and work counters are gateable; latency and wave
    composition are timing and stay ungated.
    """

    key: str
    n: int
    d: int
    clients: int = 8
    requests_per_client: int = 12
    unique: int = 6          # distinct focals per shard
    hot_share: float = 0.5
    tau: int = 0
    quick: bool = False


SERVE_CONFIGS: List[ServeBenchConfig] = [
    ServeBenchConfig("serve/quick/mixed", 250, 3, quick=True),
    ServeBenchConfig("serve/load/hot", 400, 3, requests_per_client=25,
                     unique=8, hot_share=0.6, tau=1),
]

#: Totals gated *exactly* on the ``serve/`` family: the request plans are
#: seeded, and single-flight + result cache make computation exactly-once
#: per unique key regardless of thread scheduling, so these cannot drift
#: without a real behavioural change.  ``coalesced``/``waves`` are timing-
#: dependent and only sanity-checked (``coalesced >= 1``) at run time.
SERVE_EXACT_COUNTERS = ("admitted", "queries_computed", "requests")


@dataclass(frozen=True)
class ObsBenchConfig:
    """One frozen tracing-overhead workload: the same queries answered
    untraced and traced (full span tree), back to back, ``reps`` times
    each with the minimum wall kept per side."""

    key: str
    distribution: str
    n: int
    d: int
    queries: int = 2
    tau: int = 1
    reps: int = 3
    quick: bool = True


OBS_CONFIGS: List[ObsBenchConfig] = [
    ObsBenchConfig("obs/overhead/d=3", "IND", 400, 3),
]


#: Construction counters gated *exactly* on the ``build/`` family: the
#: split cascade is deterministic for a frozen workload and — by the
#: parallel-identity contract — invariant under --jobs, so any drift is a
#: real change to the tree being built.  ``build_tasks`` is deliberately
#: absent: it counts subtree units shipped to workers, which legitimately
#: varies with jobs (0 when serial).
BUILD_EXACT_COUNTERS = ("halfspaces_inserted", "nodes_created", "splits_performed")


def calibrate(rounds: int = 1500, repeats: int = 3) -> float:
    """Seconds for a fixed CPU workload; normalises wall-clock across hosts.

    Mixes the two ingredients the benchmark exercises — the pure-Python
    Seidel solver and small-array numpy work — so the ratio between two
    machines transfers reasonably to the measured queries.  The loop is
    repeated and the *minimum* taken: transient load inflates individual
    timings but never deflates them, so the minimum is the stable estimate
    of the machine's speed (a calibration measured under load would
    otherwise skew every calibrated comparison against that baseline).
    """
    import numpy as np

    rng = np.random.default_rng(0)
    constraints = [(list(map(float, rng.normal(size=4))), float(rng.normal()))
                   for _ in range(24)]
    box_lower = [0.0] * 4
    box_upper = [1.0] * 4
    objective = [1.0, 0.5, -0.25, 0.125]
    matrix = rng.normal(size=(64, 8))
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(rounds):
            solve_lp(constraints, objective, box_lower, box_upper)
            (matrix @ matrix.T).sum()
        best = min(best, time.perf_counter() - start)
    return best


def run_config(
    config: BenchConfig,
    jobs: Optional[int] = None,
    engine: Optional[str] = None,
    extra_options: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Execute one configuration and return its measurement record."""
    dataset = generate(config.distribution, config.n, config.d, seed=0)
    tree = RStarTree.build(dataset.records)
    options: Dict[str, object] = dict(extra_options or {})
    if config.d == 3:
        # The engine switch only exists for the d = 3 quad-tree path; the
        # default (None) is the facade's auto-dispatch, i.e. planar.
        options["engine"] = engine or "auto"
    start = time.perf_counter()
    batch = run_batch(
        dataset,
        algorithm="aa",
        queries=config.queries,
        seed=0,
        tau=config.tau,
        tree=tree,
        label=config.key,
        jobs=jobs,
        **options,
    )
    wall = time.perf_counter() - start
    measurements = batch.measurements
    counters: Dict[str, float] = {}
    for measurement in measurements:
        for name, value in measurement.counters.items():
            if not name.startswith("time_"):
                counters[name] = counters.get(name, 0.0) + value
    funnel = screen_funnel(counters)
    return {
        "wall_s": round(wall, 4),
        "cpu_s": round(batch.mean_cpu, 4),
        "io": batch.mean_io,
        "k_stars": [m.k_star for m in measurements],
        "region_counts": [m.region_count for m in measurements],
        "lp_calls": int(counters.get("lp_calls", 0)),
        "cells_examined": int(counters.get("cells_examined", 0)),
        "candidates_generated": int(counters.get("candidates_generated", 0)),
        "prefixes_cut": int(counters.get("prefixes_cut", 0)),
        "pairwise_pruned": int(counters.get("pairwise_pruned", 0)),
        "screen_accepts": int(counters.get("screen_accepts", 0)),
        "screen_rejects": int(counters.get("screen_rejects", 0)),
        "lines_inserted": int(counters.get("lines_inserted", 0)),
        "faces_enumerated": int(counters.get("faces_enumerated", 0)),
        "worker_retries": int(counters.get("worker_retries", 0)),
        "degraded_batches": int(counters.get("degraded_batches", 0)),
        "deadline_checks": int(counters.get("deadline_checks", 0)),
        "screen_resolved_ratio": round(funnel["screen_resolved_ratio"], 4),
        "halfspaces_inserted": int(counters.get("halfspaces_inserted", 0)),
        "nodes_created": int(counters.get("nodes_created", 0)),
        "splits_performed": int(counters.get("splits_performed", 0)),
        "build_tasks": int(counters.get("build_tasks", 0)),
    }


def run_build_config(
    config: BuildBenchConfig,
    jobs: Optional[int] = None,
    engine: Optional[str] = None,
) -> Dict[str, object]:
    """Execute one construction-focused configuration.

    ``query=True`` delegates to :func:`run_config` (full AA query, one
    focal) with the configured ``split_policy``, so the record carries the
    usual fingerprint and funnel fields plus the construction volume.
    ``query=False`` reproduces exactly the cold-build prefix of BA/AA —
    incomparable scan, half-space derivation, ``insert_bulk`` — and times
    only the ``insert_bulk`` call (the split cascade ``--jobs``
    parallelises); the query-side fields are recorded as empty/zero.
    """
    if config.query:
        return run_config(
            BenchConfig(config.key, config.distribution, config.n, config.d,
                        queries=1, quick=config.quick),
            jobs=jobs,
            engine=engine,
            extra_options={"split_policy": config.split_policy},
        )

    counters = CostCounters()
    dataset = generate(config.distribution, config.n, config.d, seed=0)
    tree = RStarTree.build(dataset.records)
    focal = int(select_focal_records(dataset, 1, seed=0)[0])
    accessor = DataAccessor(dataset, focal, tree=tree, counters=counters)
    halfspaces = [
        halfspace_for_record(point, accessor.focal, record_id=record_id)
        for record_id, point in accessor.scan_incomparable()
    ]
    quadtree = AugmentedQuadTree(
        config.d - 1,
        split_threshold=config.split_threshold,
        max_depth=config.max_depth,
        split_policy=config.split_policy,
        counters=counters,
    )
    executor = make_executor(jobs) if jobs else None
    try:
        start = time.perf_counter()
        quadtree.insert_bulk(halfspaces, executor=executor)
        wall = time.perf_counter() - start
    finally:
        if executor is not None:
            executor.close()
    dump = counters.as_dict()
    return {
        "wall_s": round(wall, 4),
        "cpu_s": round(wall, 4),
        "io": float(dump.get("page_reads", 0)),
        "k_stars": [],
        "region_counts": [],
        "lp_calls": 0,
        "cells_examined": 0,
        "candidates_generated": 0,
        "prefixes_cut": 0,
        "pairwise_pruned": 0,
        "screen_accepts": 0,
        "screen_rejects": 0,
        "lines_inserted": 0,
        "faces_enumerated": 0,
        "worker_retries": int(dump.get("worker_retries", 0)),
        "degraded_batches": int(dump.get("degraded_batches", 0)),
        "deadline_checks": int(dump.get("deadline_checks", 0)),
        "screen_resolved_ratio": 0.0,
        "halfspaces_inserted": int(dump.get("halfspaces_inserted", 0)),
        "nodes_created": int(dump.get("nodes_created", 0)),
        "splits_performed": int(dump.get("splits_performed", 0)),
        "build_tasks": int(dump.get("build_tasks", 0)),
    }


def run_service_config(
    config: ServiceBenchConfig,
    jobs: Optional[int] = None,
    engine: Optional[str] = None,
) -> Dict[str, object]:
    """Measure the cold per-query path against the warm service batch.

    *Cold* is the standalone shape the service replaces: one fresh
    ``maxrank()`` per query, R*-tree rebuilt every time.  *Warm* is one
    :class:`MaxRankService` answering the whole batch (shared tree, warm
    skyline state, result cache; ``--jobs`` adds whole-query parallelism).
    The two sides are asserted bit-identical before anything is recorded,
    so the recorded speedup can never be bought with a wrong answer.
    """
    dataset = generate(config.distribution, config.n, config.d, seed=0)
    unique = select_focal_records(dataset, config.unique, seed=0)
    focals = [unique[i % len(unique)] for i in range(config.batch)]
    options: Dict[str, object] = {}
    if config.d == 3:
        options["engine"] = engine or "auto"

    # Cold: per-query tree build + standalone query, one per unique focal.
    cold_results = {}
    cold_start = time.perf_counter()
    for focal in unique:
        cold_results[focal] = maxrank(dataset, int(focal), tau=config.tau, **options)
    cold_wall = time.perf_counter() - cold_start
    cold_per_query = cold_wall / len(unique)

    # Warm: one service, one batch.
    service = MaxRankService(dataset)
    try:
        warm_start = time.perf_counter()
        results = service.query_batch(
            focals, tau=config.tau, jobs=jobs, **options
        )
        warm_wall = time.perf_counter() - warm_start
        for focal, result in zip(focals, results):
            if result_fingerprint(result) != result_fingerprint(cold_results[focal]):
                raise AssertionError(
                    f"{config.key}: service result for focal {focal} differs "
                    f"from standalone maxrank()"
                )
        stats = service.stats()
        counters = service.counters.as_dict()
    finally:
        service.close()

    warm_per_query = warm_wall / len(focals)
    funnel = screen_funnel(counters)
    return {
        "wall_s": round(warm_wall, 4),
        "cold_wall_s": round(cold_wall, 4),
        "cold_per_query_s": round(cold_per_query, 5),
        "warm_per_query_s": round(warm_per_query, 5),
        "speedup": round(cold_per_query / warm_per_query, 2) if warm_per_query else 0.0,
        "cold_start_s": round(stats["tree_build_seconds"], 5),
        "cpu_s": round(warm_per_query, 4),
        "io": 0.0,
        "batch": config.batch,
        "unique": len(unique),
        "k_stars": [r.k_star for r in results],
        "region_counts": [r.region_count for r in results],
        "cache_hits": int(stats["cache_hits"]),
        "skyline_reused": int(stats["skyline_reused"]),
        "queries_computed": int(stats["queries_computed"]),
        "lp_calls": int(counters.get("lp_calls", 0)),
        "cells_examined": int(counters.get("cells_examined", 0)),
        "candidates_generated": int(counters.get("candidates_generated", 0)),
        "prefixes_cut": int(counters.get("prefixes_cut", 0)),
        "pairwise_pruned": int(counters.get("pairwise_pruned", 0)),
        "screen_accepts": int(counters.get("screen_accepts", 0)),
        "screen_rejects": int(counters.get("screen_rejects", 0)),
        "lines_inserted": int(counters.get("lines_inserted", 0)),
        "faces_enumerated": int(counters.get("faces_enumerated", 0)),
        "worker_retries": int(counters.get("worker_retries", 0)),
        "degraded_batches": int(counters.get("degraded_batches", 0)),
        "deadline_checks": int(counters.get("deadline_checks", 0)),
        "screen_resolved_ratio": round(funnel["screen_resolved_ratio"], 4),
    }


def run_update_config(
    config: UpdateBenchConfig,
    jobs: Optional[int] = None,
    engine: Optional[str] = None,
) -> Dict[str, object]:
    """Measure the 80/20 query/mutate workload on one mutable service.

    The first mutation is an insert strictly dominated by a cached focal
    record — the planted witness that scoped invalidation *must* retain —
    and before anything is recorded every unique focal is re-asked and
    asserted bit-identical to a cold service built over the mutated
    records, so the recorded numbers can never describe stale answers.
    """
    import numpy as np

    from repro.data.dataset import Dataset

    dataset = generate(config.distribution, config.n, config.d, seed=0)
    unique = select_focal_records(dataset, config.unique, seed=0)
    options: Dict[str, object] = {}
    if config.d == 3:
        options["engine"] = engine or "auto"

    rng = np.random.default_rng(0)
    service = MaxRankService(dataset)
    try:
        start = time.perf_counter()
        mutations = queries = 0
        for op in range(config.ops):
            if op % 5 == 4:
                if mutations == 0:
                    service.insert(dataset.records[unique[0]] * 0.5)
                elif mutations % 2 == 1:
                    service.delete(int(rng.integers(0, service.dataset.n)))
                else:
                    service.insert(rng.uniform(0.05, 0.95, size=config.d))
                mutations += 1
            else:
                focal = unique[queries % len(unique)] % service.dataset.n
                service.query(int(focal), tau=config.tau, jobs=jobs, **options)
                queries += 1
        wall = time.perf_counter() - start

        # Oracle gate: the mutated service must be indistinguishable from a
        # cold service over the final records before numbers are recorded.
        final_focals = [int(f % service.dataset.n) for f in unique]
        oracle = MaxRankService(
            Dataset(service.dataset.records.copy(), name="oracle"), cache_size=0
        )
        try:
            results = []
            for focal in final_focals:
                served = service.query(focal, tau=config.tau, **options)
                reference = oracle.query(focal, tau=config.tau, **options)
                if result_fingerprint(served) != result_fingerprint(reference):
                    raise AssertionError(
                        f"{config.key}: mutated service answer for focal "
                        f"{focal} differs from a cold rebuild"
                    )
                results.append(served)
        finally:
            oracle.close()

        stats = service.stats()
        counters = service.counters.as_dict()
    finally:
        service.close()

    if not stats["retained"]:
        raise AssertionError(
            f"{config.key}: scoped invalidation retained nothing despite the "
            f"planted dominated insert"
        )
    funnel = screen_funnel(counters)
    return {
        "wall_s": round(wall, 4),
        "cpu_s": round(wall / config.ops, 4),
        "io": 0.0,
        "ops": config.ops,
        "unique": len(unique),
        "k_stars": [r.k_star for r in results],
        "region_counts": [r.region_count for r in results],
        "inserts": int(stats["inserts"]),
        "deletes": int(stats["deletes"]),
        "invalidated": int(stats["invalidated"]),
        "retained": int(stats["retained"]),
        "cache_hits": int(stats["cache_hits"]),
        "queries_computed": int(stats["queries_computed"]),
        "lp_calls": int(counters.get("lp_calls", 0)),
        "cells_examined": int(counters.get("cells_examined", 0)),
        "candidates_generated": int(counters.get("candidates_generated", 0)),
        "prefixes_cut": int(counters.get("prefixes_cut", 0)),
        "pairwise_pruned": int(counters.get("pairwise_pruned", 0)),
        "screen_accepts": int(counters.get("screen_accepts", 0)),
        "screen_rejects": int(counters.get("screen_rejects", 0)),
        "lines_inserted": int(counters.get("lines_inserted", 0)),
        "faces_enumerated": int(counters.get("faces_enumerated", 0)),
        "worker_retries": int(counters.get("worker_retries", 0)),
        "degraded_batches": int(counters.get("degraded_batches", 0)),
        "deadline_checks": int(counters.get("deadline_checks", 0)),
        "screen_resolved_ratio": round(funnel["screen_resolved_ratio"], 4),
    }


def run_obs_config(
    config: ObsBenchConfig,
    jobs: Optional[int] = None,
    engine: Optional[str] = None,
) -> Dict[str, object]:
    """Measure tracing overhead: the same queries untraced vs fully traced.

    Two hard gates run before anything is recorded (tracing that buys
    observability with a changed answer is a bug, not a cost):

    * every result fingerprint must be bit-identical between the traced
      and the untraced pass, and
    * every non-time counter must match *exactly* — not within the 15 %
      work-counter tolerance; only the wall-clock ratio is a measurement.

    The recorded ``wall_s`` is the *untraced* side, so the standard
    calibrated wall gate also watches the disabled-path cost (the single
    ``is None`` check per instrumented site) riding in every other
    configuration.  Both passes run serial: ``--jobs`` batches trace
    through a different span shape (``query_task``), which the smoke and
    differential tests cover; this workload isolates the tracer cost.
    """
    from repro.obs import Tracer

    del jobs  # see docstring: both passes deliberately serial

    dataset = generate(config.distribution, config.n, config.d, seed=0)
    tree = RStarTree.build(dataset.records)
    focals = [int(f) for f in select_focal_records(dataset, config.queries, seed=0)]
    options: Dict[str, object] = {}
    if config.d == 3:
        options["engine"] = engine or "auto"

    def one_pass(traced: bool):
        best = float("inf")
        fingerprints: List[object] = []
        k_stars: List[int] = []
        region_counts: List[int] = []
        dump: Dict[str, float] = {}
        spans = 0
        for _ in range(config.reps):
            fingerprints, k_stars, region_counts = [], [], []
            dump, spans = {}, 0
            start = time.perf_counter()
            for focal in focals:
                counters = CostCounters()
                tracer = handle = None
                if traced:
                    tracer = Tracer()
                    counters._tracer = tracer
                    handle = tracer.begin("request")
                result = maxrank(dataset, focal, tau=config.tau, tree=tree,
                                 counters=counters, **options)
                if tracer is not None:
                    tracer.finish(handle)
                    counters._tracer = None
                    tracer.absorb(counters.drain_spans())
                    spans += len(tracer.records())
                fingerprints.append(result_fingerprint(result))
                k_stars.append(result.k_star)
                region_counts.append(result.region_count)
                for name, value in counters.as_dict().items():
                    if not name.startswith("time_"):
                        dump[name] = dump.get(name, 0.0) + value
            best = min(best, time.perf_counter() - start)
        return best, fingerprints, k_stars, region_counts, dump, spans

    plain_wall, plain_fps, k_stars, region_counts, plain_dump, _ = one_pass(False)
    traced_wall, traced_fps, _, _, traced_dump, spans = one_pass(True)

    if traced_fps != plain_fps:
        raise AssertionError(
            f"{config.key}: tracing changed a result fingerprint"
        )
    if traced_dump != plain_dump:
        drifted = sorted(
            name for name in set(traced_dump) | set(plain_dump)
            if traced_dump.get(name) != plain_dump.get(name)
        )
        raise AssertionError(
            f"{config.key}: tracing changed counters: {drifted}"
        )
    if spans == 0:
        raise AssertionError(f"{config.key}: traced pass recorded no spans")

    funnel = screen_funnel(plain_dump)
    return {
        "wall_s": round(plain_wall, 4),
        "traced_wall_s": round(traced_wall, 4),
        "overhead_ratio": round(traced_wall / plain_wall, 3) if plain_wall else 0.0,
        "spans": int(spans),
        "cpu_s": round(plain_wall / len(focals), 4),
        "io": float(plain_dump.get("page_reads", 0)),
        "k_stars": k_stars,
        "region_counts": region_counts,
        "lp_calls": int(plain_dump.get("lp_calls", 0)),
        "cells_examined": int(plain_dump.get("cells_examined", 0)),
        "candidates_generated": int(plain_dump.get("candidates_generated", 0)),
        "prefixes_cut": int(plain_dump.get("prefixes_cut", 0)),
        "pairwise_pruned": int(plain_dump.get("pairwise_pruned", 0)),
        "screen_accepts": int(plain_dump.get("screen_accepts", 0)),
        "screen_rejects": int(plain_dump.get("screen_rejects", 0)),
        "lines_inserted": int(plain_dump.get("lines_inserted", 0)),
        "faces_enumerated": int(plain_dump.get("faces_enumerated", 0)),
        "worker_retries": int(plain_dump.get("worker_retries", 0)),
        "degraded_batches": int(plain_dump.get("degraded_batches", 0)),
        "deadline_checks": int(plain_dump.get("deadline_checks", 0)),
        "screen_resolved_ratio": round(funnel["screen_resolved_ratio"], 4),
        "halfspaces_inserted": int(plain_dump.get("halfspaces_inserted", 0)),
        "nodes_created": int(plain_dump.get("nodes_created", 0)),
        "splits_performed": int(plain_dump.get("splits_performed", 0)),
        "build_tasks": int(plain_dump.get("build_tasks", 0)),
    }


def run_serve_config(
    config: ServeBenchConfig,
    jobs: Optional[int] = None,
    engine: Optional[str] = None,
) -> Dict[str, object]:
    """Measure the network front closed-loop: sockets, router, admission.

    ``clients`` threads each hold one TCP connection to an in-process
    :class:`ThreadedLineServer` and issue their seeded request plan,
    measuring per-request latency.  Three correctness gates run before
    anything is recorded: every response payload must equal the standalone
    ``maxrank()`` payload for its key, each unique key must have been
    computed exactly once across both shards, and the admission layer must
    have coalesced at least one duplicate (the barrier-synchronised hot
    key guarantees a collision to coalesce).
    """
    import json as json_mod
    import random
    import socket
    import statistics
    import threading

    from repro.obs.snapshot import serving_snapshot
    from repro.service import DatasetRouter, ThreadedLineServer
    from repro.service.cli import (  # the real CLI backend, not a test double
        _answer_payload, _error_payload, _handle_request, _RouterBackend,
    )

    del engine  # requests use the service's auto-dispatch; flag is a no-op here

    datasets = {
        "a": generate("IND", config.n, config.d, seed=0),
        "b": generate("IND", max(120, config.n // 2), config.d + 1, seed=1),
    }
    focals = {
        shard: select_focal_records(dataset, config.unique, seed=0)
        for shard, dataset in datasets.items()
    }
    keys = [
        (shard, int(focal), config.tau)
        for shard in sorted(datasets)
        for focal in focals[shard]
    ]
    hot_key = keys[0]
    cold_keys = keys[1:]

    # Standalone references: the payload each response must equal, bit for
    # bit (k*, region count, dominators, tau and the rounded representative).
    references = {}
    for shard, focal, tau in keys:
        result = maxrank(datasets[shard], focal, tau=tau)
        payload = _answer_payload(result, False)
        payload.pop("cache_hit")
        references[(shard, focal, tau)] = payload

    # Seeded skewed plans: first request hot everywhere, then hot_share.
    plans = []
    for client in range(config.clients):
        rng = random.Random(1000 + client)
        plan = [hot_key]
        for _ in range(config.requests_per_client - 1):
            if rng.random() < config.hot_share:
                plan.append(hot_key)
            else:
                plan.append(cold_keys[rng.randrange(len(cold_keys))])
        plans.append(plan)

    shards = {name: MaxRankService(dataset) for name, dataset in datasets.items()}
    router = DatasetRouter(shards, slots=2, wave_window_s=0.02, jobs=jobs)
    backend = _RouterBackend(router, None)

    def handler(line: str):
        payload, quit_ = _handle_request(backend, json_mod.loads(line))
        return (None if payload is None else json_mod.dumps(payload)), quit_

    server = ThreadedLineServer(
        "127.0.0.1", 0, handler,
        on_error=lambda exc: json_mod.dumps({"error": _error_payload(exc)}),
    )
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()

    latencies: List[float] = []
    latency_lock = threading.Lock()
    failures: List[str] = []
    barrier = threading.Barrier(config.clients + 1)

    def client_loop(plan) -> None:
        sock = socket.create_connection(server.address, timeout=60)
        stream = sock.makefile("rwb")
        try:
            barrier.wait()
            local = []
            for shard, focal, tau in plan:
                request = {"dataset": shard, "focal": focal, "tau": tau}
                sent = time.perf_counter()
                stream.write((json_mod.dumps(request) + "\n").encode())
                stream.flush()
                answer = json_mod.loads(stream.readline())
                local.append(time.perf_counter() - sent)
                answer.pop("cache_hit", None)
                if answer != references[(shard, focal, tau)]:
                    failures.append(
                        f"{config.key}: payload for {shard}/{focal} differs "
                        f"from standalone maxrank()"
                    )
                    return
            with latency_lock:
                latencies.extend(local)
        finally:
            sock.close()

    workers = [
        threading.Thread(target=client_loop, args=(plan,)) for plan in plans
    ]
    try:
        for worker in workers:
            worker.start()
        barrier.wait()
        start = time.perf_counter()
        for worker in workers:
            worker.join()
        wall = time.perf_counter() - start
        # One source of truth for the serving tallies: the same
        # consolidated snapshot the ``{"cmd": "metrics"}`` verb and the
        # Prometheus collector read, instead of re-summing router.stats().
        snapshot = serving_snapshot(router)
        counters: Dict[str, float] = {}
        for service in shards.values():
            for name, value in service.counters.as_dict().items():
                counters[name] = counters.get(name, 0.0) + value
    finally:
        server.shutdown()
        server_thread.join(timeout=30)
        router.close()

    if failures:
        raise AssertionError(failures[0])
    total_requests = config.clients * config.requests_per_client
    admitted = int(snapshot["admitted"])
    coalesced = int(snapshot["coalesced"])
    waves = int(snapshot["waves"])
    computed = int(snapshot["queries_computed"])
    if computed != len(keys):
        raise AssertionError(
            f"{config.key}: expected exactly-once computation of {len(keys)} "
            f"unique keys, measured {computed}"
        )
    if coalesced < 1:
        raise AssertionError(
            f"{config.key}: single-flight coalesced nothing despite the "
            f"barrier-synchronised hot key"
        )

    ordered = sorted(latencies)
    p50 = statistics.median(ordered)
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    funnel = screen_funnel(counters)
    return {
        "wall_s": round(wall, 4),
        "cpu_s": round(p50, 5),
        "io": 0.0,
        "clients": config.clients,
        "requests": total_requests,
        "unique": len(keys),
        "p50_ms": round(p50 * 1000, 3),
        "p99_ms": round(p99 * 1000, 3),
        "qps": round(total_requests / wall, 1) if wall > 0 else 0.0,
        "admitted": admitted,
        "coalesced": coalesced,
        "waves": waves,
        "queries_computed": computed,
        "cache_hits": int(counters.get("cache_hits", 0)),
        "k_stars": [references[key]["k_star"] for key in keys],
        "region_counts": [references[key]["regions"] for key in keys],
        "lp_calls": int(counters.get("lp_calls", 0)),
        "cells_examined": int(counters.get("cells_examined", 0)),
        "candidates_generated": int(counters.get("candidates_generated", 0)),
        "prefixes_cut": int(counters.get("prefixes_cut", 0)),
        "pairwise_pruned": int(counters.get("pairwise_pruned", 0)),
        "screen_accepts": int(counters.get("screen_accepts", 0)),
        "screen_rejects": int(counters.get("screen_rejects", 0)),
        "lines_inserted": int(counters.get("lines_inserted", 0)),
        "faces_enumerated": int(counters.get("faces_enumerated", 0)),
        "worker_retries": int(counters.get("worker_retries", 0)),
        "degraded_batches": int(counters.get("degraded_batches", 0)),
        "deadline_checks": int(counters.get("deadline_checks", 0)),
        "screen_resolved_ratio": round(funnel["screen_resolved_ratio"], 4),
    }


def run_matrix(
    quick: bool,
    jobs: Optional[int] = None,
    engine: Optional[str] = None,
    family: str = "all",
) -> Dict[str, Dict[str, object]]:
    """Run the (possibly restricted) workload matrix.

    ``family="build"`` restricts the run to the ``build/`` configurations
    (the construction-focused subset CI smokes with ``--jobs 2``);
    ``family="serve"`` to the closed-loop network-serving configurations
    (the CI serve smoke); ``family="obs"`` to the tracing-overhead
    configurations (the CI obs smoke); ``"all"`` runs everything.
    """
    results: Dict[str, Dict[str, object]] = {}
    if family == "all":
        for config in CONFIGS:
            if quick and not config.quick:
                continue
            if engine == "generic" and config.d == 3 and config.distribution == "ANTI":
                print(f"skipping {config.key}: the generic engine is infeasible on "
                      f"anticorrelated d=3 leaves (use the planar engine)", flush=True)
                continue
            print(f"running {config.key} ...", flush=True)
            results[config.key] = run_config(config, jobs=jobs, engine=engine)
    if family in ("all", "build"):
        for build_config in BUILD_CONFIGS:
            if quick and not build_config.quick:
                continue
            print(f"running {build_config.key} (construction) ...", flush=True)
            results[build_config.key] = run_build_config(
                build_config, jobs=jobs, engine=engine
            )
    if family in ("all", "serve"):
        for serve_config in SERVE_CONFIGS:
            if quick and not serve_config.quick:
                continue
            print(f"running {serve_config.key} (closed-loop load) ...", flush=True)
            results[serve_config.key] = run_serve_config(
                serve_config, jobs=jobs, engine=engine
            )
    if family in ("all", "obs"):
        for obs_config in OBS_CONFIGS:
            if quick and not obs_config.quick:
                continue
            print(f"running {obs_config.key} (tracing overhead) ...", flush=True)
            results[obs_config.key] = run_obs_config(
                obs_config, jobs=jobs, engine=engine
            )
    if family != "all":
        return results
    for service_config in SERVICE_CONFIGS:
        if quick and not service_config.quick:
            continue
        print(f"running {service_config.key} (cold vs warm) ...", flush=True)
        results[service_config.key] = run_service_config(
            service_config, jobs=jobs, engine=engine
        )
    for update_config in UPDATE_CONFIGS:
        if quick and not update_config.quick:
            continue
        print(f"running {update_config.key} (query/mutate) ...", flush=True)
        results[update_config.key] = run_update_config(
            update_config, jobs=jobs, engine=engine
        )
    return results


def load_baseline() -> Optional[Dict[str, object]]:
    if not BASELINE_PATH.exists():
        return None
    with BASELINE_PATH.open() as handle:
        return json.load(handle)


def compare(
    current: Dict[str, Dict[str, object]],
    current_calibration: float,
    baseline: Dict[str, object],
    *,
    wall_gate: bool = True,
    serial_run: bool = True,
) -> List[str]:
    """Return a list of failure messages (empty when the run is clean).

    ``wall_gate=False`` skips the calibrated wall-clock check — used for
    ``--jobs`` runs, where the committed baseline is serial and the
    wall-clock depends on the host's core count; the fingerprint and
    counter gates (which a correct parallel run must pass unchanged) stay.
    ``serial_run=False`` (also a ``--jobs`` property, but deliberately a
    separate flag) additionally skips the ``skyline_reused`` amortisation
    gate: pool workers fork with a cold skyline cache, so that counter
    depends on worker scheduling under ``--jobs``.
    """
    failures: List[str] = []
    base_entries = baseline.get("current", {}).get("configs", {})
    base_calibration = float(baseline.get("current", {}).get("calibration_s", 0.0))
    for key, entry in current.items():
        base = base_entries.get(key)
        if base is None:
            failures.append(f"{key}: missing from committed baseline")
            continue
        for field in ("k_stars", "region_counts"):
            if entry[field] != base[field]:
                failures.append(
                    f"{key}: result fingerprint changed — {field} "
                    f"{base[field]} -> {entry[field]}"
                )
        for counter in WORK_COUNTERS:
            base_value = float(base.get(counter, 0))
            value = float(entry.get(counter, 0))
            if base_value > 0 and value > base_value * (1 + REGRESSION_TOLERANCE):
                failures.append(
                    f"{key}: {counter} regressed {base_value:.0f} -> {value:.0f}"
                )
        if key.startswith("service/"):
            # Amortisation gates: the service family must keep skipping at
            # least as much work as the committed baseline (deterministic
            # counts, so any drop is a real lost optimisation).
            for counter in SERVICE_MIN_COUNTERS:
                if counter == "skyline_reused" and not serial_run:
                    continue  # worker forks start cold under --jobs
                base_value = float(base.get(counter, 0))
                value = float(entry.get(counter, 0))
                if value < base_value:
                    failures.append(
                        f"{key}: {counter} dropped {base_value:.0f} -> {value:.0f} "
                        f"(lost service amortisation)"
                    )
        if key.startswith("update/"):
            for counter in UPDATE_EXACT_COUNTERS:
                base_value = int(base.get(counter, -1))
                value = int(entry.get(counter, -1))
                if value != base_value:
                    failures.append(
                        f"{key}: {counter} changed {base_value} -> {value} "
                        f"(scoped mutation invalidation drifted)"
                    )
        if key.startswith("serve/"):
            # Exactly-once totals of the serving front: the request plans
            # are seeded and single-flight + cache make computation
            # exactly-once per unique key, so any drift is behavioural.
            for counter in SERVE_EXACT_COUNTERS:
                base_value = int(base.get(counter, -1))
                value = int(entry.get(counter, -1))
                if value != base_value:
                    failures.append(
                        f"{key}: {counter} changed {base_value} -> {value} "
                        f"(admission/serving behaviour drifted)"
                    )
        if key.startswith("build/"):
            # Construction gates: the split cascade is deterministic and
            # serial/parallel-invariant, so these must match exactly — a
            # drift means the tree being built changed shape.
            for counter in BUILD_EXACT_COUNTERS:
                base_value = int(base.get(counter, -1))
                value = int(entry.get(counter, -1))
                if value != base_value:
                    failures.append(
                        f"{key}: {counter} changed {base_value} -> {value} "
                        f"(construction volume drifted)"
                    )
        for counter in ROBUSTNESS_ZERO_COUNTERS:
            base_value = float(base.get(counter, 0))
            value = float(entry.get(counter, 0))
            if value > base_value:
                failures.append(
                    f"{key}: {counter} is {value:.0f} on the fault-free "
                    f"workload (committed {base_value:.0f}) — fault-handling "
                    f"work leaked into the happy path"
                )
        if (
            wall_gate
            and not key.startswith("serve/")  # closed-loop latency is
            # scheduling, not algorithm work; p50/p99/qps are trajectory only
            and base_calibration > 0
            and current_calibration > 0
            and float(base["wall_s"]) >= WALL_FLOOR_S
        ):
            base_scaled = float(base["wall_s"]) / base_calibration
            scaled = float(entry["wall_s"]) / current_calibration
            if scaled > base_scaled * (1 + WALL_TOLERANCE):
                failures.append(
                    f"{key}: calibrated wall-clock regressed "
                    f"{base_scaled:.2f} -> {scaled:.2f} "
                    f"(raw {base['wall_s']}s -> {entry['wall_s']}s)"
                )
    return failures


def print_report(results: Dict[str, Dict[str, object]]) -> None:
    rows = []
    for key, entry in results.items():
        row = {
            "config": key,
            "wall_s": entry["wall_s"],
            "k*": "/".join(str(v) for v in entry["k_stars"]),
            "|T|": "/".join(str(v) for v in entry["region_counts"]),
            "lp": entry["lp_calls"],
            "generated": entry.get("candidates_generated", entry["cells_examined"]),
            "cut": entry.get("prefixes_cut", 0),
            "screened%": round(100 * entry["screen_resolved_ratio"], 1),
        }
        if key.startswith("service/"):
            row["k*"] = "/".join(str(v) for v in entry["k_stars"][: entry["unique"]])
            row["|T|"] = "/".join(
                str(v) for v in entry["region_counts"][: entry["unique"]]
            )
            row["warm_x"] = entry["speedup"]
            row["hits"] = entry["cache_hits"]
        if key.startswith("update/"):
            row["hits"] = entry["cache_hits"]
            row["inv"] = entry["invalidated"]
            row["ret"] = entry["retained"]
        if key.startswith("build/"):
            row["nodes"] = entry["nodes_created"]
            row["splits"] = entry["splits_performed"]
            row["tasks"] = entry["build_tasks"]
        if key.startswith("serve/"):
            row["hits"] = entry["cache_hits"]
            row["qps"] = entry["qps"]
            row["p50ms"] = entry["p50_ms"]
            row["p99ms"] = entry["p99_ms"]
            row["coal"] = entry["coalesced"]
        rows.append(row)
    columns = ["config", "wall_s", "k*", "|T|", "lp", "generated", "cut",
               "screened%", "warm_x", "hits", "inv", "ret",
               "nodes", "splits", "tasks", "qps", "p50ms", "p99ms", "coal"]
    print()
    print(format_table(rows, columns, title="MaxRank benchmark matrix"))


def print_funnel_comparison(
    results: Dict[str, Dict[str, object]], baseline: Optional[Dict[str, object]]
) -> None:
    """Per-workload generation→screen→LP funnel, against the committed baseline.

    Makes generation-volume regressions visible at a glance: the committed
    candidate count sits next to the measured one, so a change that quietly
    re-materialises pruned candidates shows up even when wall-clock absorbs
    it.
    """
    def funnel_candidates(record: Dict[str, object]) -> object:
        if not record:
            return "-"
        if "candidates_generated" in record:
            generated = record["candidates_generated"]
        else:  # pre-DFS baseline records
            generated = record.get("cells_examined", 0)
        return int(generated) + int(record.get("pairwise_pruned", 0))

    base_entries = (baseline or {}).get("current", {}).get("configs", {})
    rows = []
    for key, entry in results.items():
        rows.append({
            "config": key,
            "candidates": funnel_candidates(entry),
            "baseline": funnel_candidates(base_entries.get(key, {})),
            "cut": entry.get("prefixes_cut", 0),
            "accepts": entry["screen_accepts"],
            "rejects": entry["screen_rejects"],
            "lp": entry["lp_calls"],
        })
    print()
    print(format_table(rows, title="Screen funnel per workload (candidates vs committed baseline)"))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--quick", action="store_true",
                        help="run only the quick subset (CI smoke)")
    parser.add_argument("--compare", action="store_true",
                        help="fail on regression against BENCH_maxrank.json")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the 'current' section of BENCH_maxrank.json")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="process-pool workers for the within-leaf execution "
                             "engine (results and counters stay bit-identical to "
                             "serial, so --compare remains sound)")
    parser.add_argument("--engine", choices=("planar", "generic"), default=None,
                        help="A/B switch for the d=3 configurations: force the "
                             "planar sweep or the generic combinatorial generator "
                             "(default: auto-dispatch, i.e. planar at d=3). "
                             "Results are bit-identical; ANTI d=3 configs are "
                             "skipped under 'generic' (infeasible)")
    parser.add_argument("--family", choices=("all", "build", "serve", "obs"),
                        default="all",
                        help="restrict the matrix to one workload family "
                             "('build' = the construction-focused configs, "
                             "'serve' = the closed-loop network-serving "
                             "configs, 'obs' = the tracing-overhead "
                             "configs; all used by CI smokes)")
    args = parser.parse_args(argv)
    if args.update and args.jobs and args.jobs > 1:
        parser.error("--update records the serial baseline; drop --jobs")
    if args.update and args.engine == "generic":
        parser.error("--update records the auto-dispatch engine; drop --engine")
    if args.compare and args.engine == "generic":
        parser.error("--compare gates counters against the committed planar-"
                     "engine baseline; --engine generic is for A/B timing runs "
                     "(no --compare)")

    calibration = calibrate()
    print(f"calibration: {calibration:.3f}s"
          + (f", jobs: {args.jobs}" if args.jobs else "")
          + (f", engine: {args.engine}" if args.engine else ""))
    results = run_matrix(quick=args.quick, jobs=args.jobs, engine=args.engine,
                         family=args.family)
    print_report(results)

    status = 0
    if args.compare:
        baseline = load_baseline()
        print_funnel_comparison(results, baseline)
        if baseline is None:
            print(f"no committed baseline at {BASELINE_PATH}", file=sys.stderr)
            status = 1
        else:
            parallel = bool(args.jobs and args.jobs > 1)
            failures = compare(
                results,
                calibration,
                baseline,
                wall_gate=not parallel,
                serial_run=not parallel,
            )
            if failures:
                print("\nREGRESSIONS:", file=sys.stderr)
                for failure in failures:
                    print(f"  - {failure}", file=sys.stderr)
                status = 1
            else:
                print("\ncompare: OK (within tolerance of committed baseline)")

    if args.update:
        baseline = load_baseline() or {}
        previous = baseline.get("current", {}).get("configs", {})
        merged = dict(previous)
        merged.update(results)
        baseline["schema"] = SCHEMA
        baseline["current"] = {
            "calibration_s": round(calibration, 4),
            "configs": merged,
        }
        with BASELINE_PATH.open("w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"updated {BASELINE_PATH}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
