"""Ablation A2 — quad-tree leaf split threshold.

The split threshold trades leaf count against within-leaf arrangement size:
small thresholds create many leaves (cheap per leaf, expensive to scan and
prune), large thresholds create few leaves whose bit-string enumeration grows
combinatorially.  The paper does not report its threshold; this ablation
records the sweet spot for the reproduction's LP-based within-leaf module and
verifies that the answer itself never depends on the knob.
"""

from __future__ import annotations

import time

from repro import CostCounters, generate_independent
from repro.core import aa_maxrank
from repro.experiments import format_table

THRESHOLDS = (6, 10, 16)


def _run(threshold: int, n: int = 300):
    data = generate_independent(n, 4, seed=47)
    counters = CostCounters()
    start = time.perf_counter()
    result = aa_maxrank(data, 11, counters=counters, split_threshold=threshold)
    return {
        "threshold": threshold,
        "cpu_s": time.perf_counter() - start,
        "lp_calls": counters.lp_calls,
        "leaves_processed": counters.leaves_processed,
        "leaves_pruned": counters.leaves_pruned,
        "k_star": result.k_star,
        "regions": result.region_count,
    }


def test_ablation_split_threshold(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: [_run(threshold) for threshold in THRESHOLDS], rounds=1, iterations=1
    )
    print()
    print(format_table(rows, ["threshold", "cpu_s", "lp_calls", "leaves_processed",
                              "leaves_pruned", "k_star", "regions"],
                       title="Ablation A2 — quad-tree split threshold"))
    assert len({row["k_star"] for row in rows}) == 1
    # Larger thresholds must produce fewer, fatter leaves.
    pruned = [row["leaves_pruned"] + row["leaves_processed"] for row in rows]
    assert pruned == sorted(pruned, reverse=True)
