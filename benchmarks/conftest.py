"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation
section (see DESIGN.md § 5 for the experiment index).  By default the
``small`` workload scale is used so the whole suite finishes in minutes;
set ``REPRO_BENCH_SCALE=paper_shape`` to run the larger sweeps recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> str:
    """Workload scale selected through the environment."""
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def scale() -> str:
    """The workload scale used by every benchmark in this session."""
    return bench_scale()
