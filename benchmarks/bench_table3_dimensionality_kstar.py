"""Table 3 — ``k*`` and ``|T|`` versus dimensionality (IND data, AA).

Expected shape (paper): as ``d`` grows, ``k*`` drops sharply while the number
of result regions ``|T|`` increases steeply — the dimensionality curse makes
the focal record competitive in many small pockets of the query space.
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.experiments.figures import run_table3_dimensionality


def test_table3_kstar_and_regions(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_table3_dimensionality(scale, quiet=True), rounds=1, iterations=1
    )
    print()
    print(format_table(rows, ["d", "k_star", "regions", "cpu_s", "io"],
                       title="Table 3 — effect of dimensionality on k* and |T|"))
    dims = [row["d"] for row in rows]
    k_stars = [row["k_star"] for row in rows]
    regions = [row["regions"] for row in rows]
    assert dims == sorted(dims)
    # Shape checks: k* shrinks and |T| grows from the smallest to the largest d.
    assert k_stars[-1] <= k_stars[0]
    assert regions[-1] >= regions[0]
