#!/usr/bin/env python
"""Render a query trace as an indented span tree with self/total times.

Input is JSON on stdin or from a file argument — any of the shapes the
serving stack emits:

* a full ``{"cmd": "trace"}`` answer (the span tree under ``"trace"``),
* a bare ``Tracer.export()`` dict (``{"trace_id": ..., "spans": [...]}``),
* a slow-query log line (the tree under ``"trace"``), or
* just ``{"spans": [...]}``.

Usage::

    printf '{"cmd": "trace", "focal": 5}\n' | nc host port | \
        python tools/trace_view.py
    python tools/trace_view.py slow_query.json

For every span the *total* column is its own elapsed wall-clock time and
*self* is that minus the time of its direct children — the part spent in
the span's own code rather than delegated further down.  Spans recorded
by concurrent children can overlap, so self time is clamped at zero.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional


def _extract_spans(payload: dict) -> dict:
    """Find the trace dict inside any of the accepted JSON shapes."""
    if isinstance(payload.get("trace"), dict):
        payload = payload["trace"]
    if not isinstance(payload.get("spans"), list):
        raise ValueError(
            "no span list found; expected a {\"cmd\": \"trace\"} answer, "
            "a Tracer.export() dict, or a slow-query log line"
        )
    return payload


def _id_key(span_id: str):
    """Numeric-aware ordering of hierarchical ids (1.10 after 1.9)."""
    return tuple(
        (0, int(part)) if part.isdigit() else (1, part)
        for part in span_id.split(".")
    )


def _format_meta(meta: Optional[dict]) -> str:
    if not meta:
        return ""
    body = " ".join(f"{k}={v}" for k, v in sorted(meta.items()))
    return f"  [{body}]"


def render(trace: dict, out=None) -> None:
    """Print the span tree of one trace to ``out`` (default stdout)."""
    out = out if out is not None else sys.stdout
    spans: List[dict] = trace["spans"]
    by_id: Dict[str, dict] = {span["id"]: span for span in spans}
    children: Dict[Optional[str], List[dict]] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None and parent not in by_id:
            parent = None  # orphan (partial dump): promote to root
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: _id_key(s["id"]))

    total = sum(s["elapsed_s"] for s in children.get(None, ()))
    trace_id = trace.get("trace_id", "?")
    print(f"trace {trace_id} — {len(spans)} spans, {total * 1e3:.3f}ms total",
          file=out)

    name_width = max(
        (len(s["name"]) + 2 * s["id"].count(".") for s in spans), default=0
    )

    def walk(span: dict, depth: int) -> None:
        kids = children.get(span["id"], [])
        elapsed = span["elapsed_s"]
        self_time = max(0.0, elapsed - sum(k["elapsed_s"] for k in kids))
        label = "  " * depth + span["name"]
        print(
            f"{label:<{name_width}}  total {elapsed * 1e3:9.3f}ms  "
            f"self {self_time * 1e3:9.3f}ms"
            f"{_format_meta(span.get('meta'))}",
            file=out,
        )
        for kid in kids:
            walk(kid, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("path", nargs="?", default=None,
                        help="JSON file to render (default: stdin)")
    args = parser.parse_args(argv)
    if args.path:
        with open(args.path, "r", encoding="utf-8") as fh:
            text = fh.read()
    else:
        text = sys.stdin.read()
    try:
        render(_extract_spans(json.loads(text)))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
