#!/usr/bin/env python
"""CI smoke for the observability stack (tracing + metrics + slow log).

Boots ``python -m repro.service serve --listen 127.0.0.1:0`` as a real
subprocess (two shard snapshots, ``REPRO_JOBS=2`` so the within-leaf
engine forks pool workers, ``--metrics-port 0`` and an artificially tight
``--slow-query-threshold``), then drives it and asserts the introspection
contract end to end:

* 16 sequential mixed-shard queries answer bit-identically to standalone
  ``maxrank()`` and land on *exact* counters: no coalescing, a cache hit
  for every repeat, one computation per unique key;
* a ``{"cmd": "trace"}`` request returns a complete span tree — request
  -> admission -> service -> engine phases *including* ``leaf_task``
  spans merged back from forked pool workers — and
  ``tools/trace_view.py`` renders it;
* the Prometheus endpoint exposes per-shard request counters and latency
  histograms with exactly the counts sent, plus the consolidated
  ``repro_serving_*`` gauges;
* every query beat the (tiny) slow threshold, so stderr carries one
  structured slow-query JSON line per query, each with a span dump.

Run from the repository root::

    python tools/obs_smoke.py

Exits non-zero on the first broken promise.
"""

from __future__ import annotations

import io
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

import trace_view  # noqa: E402 - sibling tool, imported for render()
from repro import CostCounters, MaxRankService, generate, maxrank  # noqa: E402

SHARDS = {
    "alpha": ("IND", 220, 3, 71),
    "beta": ("ANTI", 180, 3, 72),
}
# 8 unique keys, each asked twice back to back -> exactly 8 computations
# and 8 cache hits; sequential requests -> exactly 0 coalesced.
UNIQUE = [
    ("alpha", 5, 1), ("alpha", 33, 0), ("alpha", 60, 1), ("alpha", 101, 0),
    ("beta", 7, 1), ("beta", 21, 0), ("beta", 55, 1), ("beta", 90, 0),
]
QUERIES = UNIQUE + UNIQUE
# A fresh (cold) key for the traced request so its tree shows the full
# engine funnel rather than a cache hit.
TRACE_KEY = ("alpha", 140, 1)

#: span names a complete traced TCP query must contain: transport-level
#: request, admission, service, engine phases, and worker-side leaf tasks.
EXPECTED_SPANS = {
    "request", "admission.submit", "admission.wave", "service.query",
    "compute", "skyline", "quadtree_build", "within_leaf", "collect_level",
    "leaf_task",
}


def build_snapshots(tmp: Path) -> dict:
    paths = {}
    for name, (dist, n, d, seed) in SHARDS.items():
        with MaxRankService(generate(dist, n, d, seed=seed)) as service:
            path = tmp / f"{name}.rprs"
            service.save_snapshot(path)
            paths[name] = path
    return paths


def standalone_references() -> dict:
    datasets = {
        name: generate(dist, n, d, seed=seed)
        for name, (dist, n, d, seed) in SHARDS.items()
    }
    references = {}
    for shard, focal, tau in UNIQUE + [TRACE_KEY]:
        result = maxrank(datasets[shard], focal, tau=tau,
                         counters=CostCounters())
        references[(shard, focal, tau)] = {
            "k_star": result.k_star,
            "regions": result.region_count,
            "dominators": result.dominator_count,
            "tau": result.tau,
        }
    return references


def connect(port: int):
    sock = socket.create_connection(("127.0.0.1", port), timeout=30)
    f = sock.makefile("rwb")
    greeting = json.loads(f.readline())
    assert greeting.get("ready") is True, f"bad greeting: {greeting}"
    return sock, f


def ask(f, payload: dict) -> dict:
    f.write((json.dumps(payload) + "\n").encode())
    f.flush()
    line = f.readline()
    assert line, "server closed the connection mid-request"
    return json.loads(line)


def scrape(port: int) -> dict:
    """GET /metrics and parse the text exposition into a flat dict."""
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metrics", timeout=30
    ) as response:
        text = response.read().decode("utf-8")
    values = {}
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, _, value = line.rpartition(" ")
        values[name] = float(value)
    return values


def main() -> int:
    failures = []

    def check(ok: bool, message: str) -> None:
        if not ok:
            failures.append(message)

    references = standalone_references()
    with tempfile.TemporaryDirectory(prefix="obs-smoke-") as tmpdir:
        tmp = Path(tmpdir)
        paths = build_snapshots(tmp)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env["REPRO_JOBS"] = "2"  # within-leaf pool -> worker-side spans
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve",
             "--listen", "127.0.0.1:0",
             "--shard", f"alpha={paths['alpha']}",
             "--shard", f"beta={paths['beta']}",
             "--slots", "2", "--wave-window", "0.0",
             "--metrics-port", "0",
             "--slow-query-threshold", "0.000000001"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env, cwd=REPO,
        )
        # Drain stderr continuously: 17 slow-query span dumps overflow a
        # pipe buffer, and a full pipe would deadlock the server.
        stderr_lines: list = []
        drain = threading.Thread(
            target=lambda: stderr_lines.extend(proc.stderr),
            daemon=True,
        )
        drain.start()
        try:
            meta = json.loads(proc.stdout.readline())
            port = meta["listening"][1]
            metrics_port = meta["metrics_port"]
            print(f"listening on {port}, metrics on {metrics_port}")

            sock, f = connect(port)
            for shard, focal, tau in QUERIES:
                answer = ask(f, {"dataset": shard, "focal": focal, "tau": tau})
                expected = references[(shard, focal, tau)]
                got = {k: answer.get(k) for k in expected}
                check(got == expected,
                      f"{shard}/{focal}/tau={tau}: {got} != {expected}")

            # --- the traced request: a complete span tree over TCP.
            shard, focal, tau = TRACE_KEY
            traced = ask(f, {"cmd": "trace", "dataset": shard,
                             "focal": focal, "tau": tau})
            expected = references[TRACE_KEY]
            got = {k: traced.get(k) for k in expected}
            check(got == expected, f"traced answer diverged: {got}")
            spans = traced.get("trace", {}).get("spans", [])
            names = {span["name"] for span in spans}
            check(EXPECTED_SPANS <= names,
                  f"span tree incomplete: missing "
                  f"{sorted(EXPECTED_SPANS - names)} in {sorted(names)}")
            rendered = io.StringIO()
            trace_view.render(traced["trace"], out=rendered)
            tree = rendered.getvalue()
            check(tree.count("\n") == len(spans) + 1,
                  f"trace_view rendered {tree.count(chr(10))} lines "
                  f"for {len(spans)} spans")
            print(f"trace: {len(spans)} spans ({len(names)} kinds), "
                  "tree renders")

            # --- consolidated metrics verb: one coherent snapshot.
            answer = ask(f, {"cmd": "metrics"})
            serving = answer["serving"]
            check(serving["coalesced"] == 0,
                  f"sequential clients coalesced {serving['coalesced']}")
            check(serving["queries_computed"] == len(UNIQUE) + 1,
                  f"computed {serving['queries_computed']} != "
                  f"{len(UNIQUE) + 1} unique keys")
            check(serving["cache_hits"] == len(UNIQUE),
                  f"cache hits {serving['cache_hits']} != {len(UNIQUE)}")
            check(serving["routed"] == len(QUERIES) + 1,
                  f"routed {serving['routed']} != {len(QUERIES) + 1}")
            check(answer["slow_queries"] == len(QUERIES) + 1,
                  f"slow queries {answer['slow_queries']} != "
                  f"{len(QUERIES) + 1}")

            # --- Prometheus endpoint: exact per-shard series.
            metrics = scrape(metrics_port)
            alpha_queries = sum(
                2 for s, _, _ in UNIQUE if s == "alpha"
            ) + 1  # the traced request also hits alpha
            beta_queries = sum(2 for s, _, _ in UNIQUE if s == "beta")
            for shard_name, count in (("alpha", alpha_queries),
                                      ("beta", beta_queries)):
                for series in (
                    f'repro_requests_total{{shard="{shard_name}"}}',
                    f'repro_query_latency_seconds_count{{shard="{shard_name}"}}',
                ):
                    check(metrics.get(series) == count,
                          f"{series} = {metrics.get(series)} != {count}")
                bucket = (f'repro_query_latency_seconds_bucket'
                          f'{{shard="{shard_name}",le="+Inf"}}')
                check(metrics.get(bucket) == count,
                      f"{bucket} = {metrics.get(bucket)} != {count}")
            check(metrics.get("repro_serving_coalesced") == 0,
                  "serving gauge: coalesced != 0")
            check(metrics.get("repro_serving_cache_hits") == len(UNIQUE),
                  f"serving gauge: cache_hits != {len(UNIQUE)}")
            check(metrics.get('repro_shard_queries_computed{shard="alpha"}')
                  == len([1 for s, _, _ in UNIQUE if s == "alpha"]) + 1,
                  "per-shard computed gauge wrong for alpha")
            print(f"metrics: {len(metrics)} series, per-shard counts exact")

            # --- graceful drain + the slow-query log on stderr.
            proc.send_signal(signal.SIGTERM)
            farewell = json.loads(f.readline())
            check(farewell.get("reason") == "SIGTERM",
                  f"bad farewell: {farewell}")
            sock.close()
            out, _ = proc.communicate(timeout=30)
            drain.join(timeout=30)
            check(proc.returncode == 0,
                  f"server exited {proc.returncode}")
            summary = json.loads(out.strip().splitlines()[-1])
            check(summary.get("slow_queries") == len(QUERIES) + 1,
                  f"shutdown slow_queries: {summary}")

            slow = []
            for line in stderr_lines:
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if record.get("event") == "slow_query":
                    slow.append(record)
            check(len(slow) == len(QUERIES) + 1,
                  f"{len(slow)} slow-query log lines != {len(QUERIES) + 1}")
            check(all(record["trace"]["spans"] for record in slow),
                  "a slow-query line carried an empty span dump")
            check(all(record["elapsed_s"] >= 0 and record["shard"]
                      for record in slow),
                  "slow-query line missing elapsed_s/shard fields")
            print(f"slow-query log: {len(slow)} structured lines, "
                  "each with a span dump")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("obs-smoke: trace tree complete over TCP, Prometheus counts "
          "exact, slow-query log populated, SIGTERM drained cleanly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
