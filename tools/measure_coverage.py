#!/usr/bin/env python
"""Dependency-free line-coverage measurement for the ``repro`` package.

Runs the tier-1 test suite under a ``sys.settrace`` hook restricted to
``src/repro`` and reports executed/executable line counts per module.  The
executable-line denominator is derived from the compiled code objects
(``dis.findlinestarts``), which is the same notion coverage.py uses for its
statement count, so the reported percentage tracks ``pytest --cov=repro``
closely (the CI coverage job uses pytest-cov; this tool exists to measure
the baseline in environments without it, and to re-calibrate the CI
``--cov-fail-under`` threshold — see .github/workflows/ci.yml).

Usage::

    PYTHONPATH=src python tools/measure_coverage.py [extra pytest args]

Caveats: code that only runs in process-pool workers is not traced (the
equivalence tests exercise the same code serially, so the impact is small),
and the settrace hook slows the suite down several-fold.
"""

from __future__ import annotations

import dis
import os
import sys
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC_PREFIX = str(REPO / "src" / "repro") + os.sep

_executed: dict = {}


def _make_local_tracer(lines: set):
    def local(frame, event, arg):
        if event == "line":
            lines.add(frame.f_lineno)
        return local
    return local


def _tracer(frame, event, arg):
    filename = frame.f_code.co_filename
    if not filename.startswith(SRC_PREFIX):
        return None
    lines = _executed.setdefault(filename, set())
    lines.add(frame.f_lineno)
    return _make_local_tracer(lines)


def executable_lines(path: Path) -> set:
    """Line numbers carrying executable statements in ``path``."""
    source = path.read_text()
    code = compile(source, str(path), "exec")
    lines: set = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for _, lineno in dis.findlinestarts(obj):
            if lineno is not None:
                lines.add(lineno)
        for const in obj.co_consts:
            if isinstance(const, type(code)):
                stack.append(const)
    return lines


def main() -> int:
    import pytest

    threading.settrace(_tracer)
    sys.settrace(_tracer)
    status = pytest.main(
        ["-q", "-p", "no:cacheprovider", *sys.argv[1:]],
    )
    sys.settrace(None)
    threading.settrace(None)

    total_executable = 0
    total_executed = 0
    rows = []
    for path in sorted((REPO / "src" / "repro").rglob("*.py")):
        expected = executable_lines(path)
        got = _executed.get(str(path), set()) & expected
        total_executable += len(expected)
        total_executed += len(got)
        percent = 100.0 * len(got) / len(expected) if expected else 100.0
        rows.append((str(path.relative_to(REPO)), len(expected), len(got), percent))

    print()
    print(f"{'module':58} {'stmts':>6} {'run':>6} {'cover':>7}")
    for name, expected, got, percent in rows:
        print(f"{name:58} {expected:6d} {got:6d} {percent:6.1f}%")
    overall = 100.0 * total_executed / total_executable if total_executable else 0.0
    print(f"{'TOTAL':58} {total_executable:6d} {total_executed:6d} {overall:6.1f}%")
    if status != 0:
        print("warning: test run was not clean; coverage is a lower bound",
              file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
