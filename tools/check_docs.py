#!/usr/bin/env python
"""Guard documentation code blocks against API drift.

Extracts every fenced ``python`` code block from the given markdown files
(default: README.md and docs/ARCHITECTURE.md) and executes them in order,
doctest-style, inside one shared namespace per file.  A block that raises —
because a documented function, argument or attribute no longer exists —
fails the check, so the documentation cannot silently drift away from the
actual API.

Blocks can opt out with a ``<!-- docs-check: skip -->`` comment on the line
directly above the opening fence (for illustrative pseudo-code).

Usage::

    python tools/check_docs.py [file.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_FILES = ("README.md", "docs/ARCHITECTURE.md")
_FENCE = re.compile(
    r"^(?P<indent>[ ]*)```python[^\n]*\n(?P<body>.*?)^(?P=indent)```[ ]*$",
    re.MULTILINE | re.DOTALL,
)
_SKIP_MARK = "docs-check: skip"


def extract_blocks(text: str) -> List[Tuple[int, str]]:
    """Return ``(line_number, source)`` for every checkable python block."""
    blocks: List[Tuple[int, str]] = []
    for match in _FENCE.finditer(text):
        preceding = text[: match.start()].rstrip("\n").rsplit("\n", 1)[-1]
        if _SKIP_MARK in preceding:
            continue
        line = text[: match.start()].count("\n") + 1
        indent = match.group("indent")
        body = match.group("body")
        if indent:
            body = "\n".join(
                row[len(indent):] if row.startswith(indent) else row
                for row in body.split("\n")
            )
        blocks.append((line, body))
    return blocks


def run_file(path: Path) -> Tuple[List[str], int]:
    """Execute every python block of one file; return (failures, block count)."""
    failures: List[str] = []
    blocks = extract_blocks(path.read_text(encoding="utf-8"))
    namespace: dict = {"__name__": f"docscheck_{path.stem}"}
    for line, source in blocks:
        try:
            code = compile(source, f"{path}:{line}", "exec")
            exec(code, namespace)  # noqa: S102 - the whole point of the check
        except Exception as error:  # pragma: no cover - failure reporting
            failures.append(f"{path}:{line}: {type(error).__name__}: {error}")
    return failures, len(blocks)


def main(argv: List[str]) -> int:
    targets = [Path(name) for name in (argv or list(DEFAULT_FILES))]
    failures: List[str] = []
    checked = 0
    for target in targets:
        path = target if target.is_absolute() else REPO_ROOT / target
        if not path.exists():
            failures.append(f"{target}: file not found")
            continue
        file_failures, block_count = run_file(path)
        checked += block_count
        failures.extend(file_failures)
    if failures:
        print("docs check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"docs check OK ({checked} code block(s) executed)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
