#!/usr/bin/env python
"""Per-phase wall-clock breakdown of quad-tree construction vs query work.

The cost-model split policy (``split_policy="cost"``, see
:func:`repro.quadtree.build.cost_should_split`) trades split-cascade work
against within-leaf funnel work.  Its constants are ratios of *measured*
phase costs, and this tool produces those measurements: for each profiled
workload it runs the full AA query once per policy and prints

* ``build`` — seconds inside the quad-tree split cascade
  (``time_quadtree_build``),
* ``skyline`` — seconds inside the BBS skyline passes,
* ``leaf`` — seconds inside within-leaf processing (scan + funnel),
* ``build%`` — the :attr:`~repro.stats.CostCounters.build_wall_fraction`
  headline ratio,
* the construction volume (``nodes``, ``splits``) and the funnel volume
  (``lp_calls``) the policy trades between.

Typical calibration loop::

    python tools/profile_build.py                  # default panel
    python tools/profile_build.py --dist IND --n 150 --d 4
    python tools/profile_build.py --policy cost --jobs 4 --repeat 3

Edit the ``COST_*`` constants in ``src/repro/quadtree/build.py``, re-run,
and keep the change only when the cost policy's ``lp_calls``/wall beat the
static policy's on the small-n panels *without* inflating ``nodes`` on the
large-n ones.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.maxrank import maxrank                  # noqa: E402
from repro.data.generators import generate              # noqa: E402
from repro.engine.executors import make_executor        # noqa: E402
from repro.experiments.harness import select_focal_records  # noqa: E402
from repro.experiments.reporting import format_table    # noqa: E402
from repro.index.rstar import RStarTree                 # noqa: E402
from repro.stats import CostCounters                    # noqa: E402

#: Default profiling panel: the committed quick/fig9 shapes (where the PR 3
#: threshold rebalance regressed small-n d=4) plus one larger-n point per
#: dimensionality so over-splitting at scale stays visible.
DEFAULT_PANEL = (
    ("IND", 150, 4),
    ("IND", 300, 4),
    ("IND", 300, 5),
    ("IND", 400, 3),
    ("ANTI", 600, 4),
)


def profile_one(
    distribution: str,
    n: int,
    d: int,
    policy: str,
    *,
    queries: int = 1,
    jobs: Optional[int] = None,
    repeat: int = 1,
    seed: int = 0,
) -> Dict[str, object]:
    """Run the workload once per ``repeat`` and keep the fastest wall."""
    dataset = generate(distribution, n, d, seed=seed)
    tree = RStarTree.build(dataset.records)
    focals = select_focal_records(dataset, queries, seed=seed)
    best_wall = float("inf")
    counters = CostCounters()
    executor = make_executor(jobs) if jobs else None
    try:
        for _ in range(max(1, repeat)):
            counters = CostCounters()
            options: Dict[str, object] = {"split_policy": policy}
            if executor is not None:
                options["executor"] = executor
            start = time.perf_counter()
            for focal in focals:
                maxrank(
                    dataset,
                    int(focal),
                    algorithm="aa",
                    tree=tree,
                    counters=counters,
                    **options,
                )
            best_wall = min(best_wall, time.perf_counter() - start)
    finally:
        if executor is not None:
            executor.close()
    build = counters.timer_seconds("quadtree_build")
    skyline = counters.timer_seconds("skyline")
    leaf = counters.timer_seconds("within_leaf")
    return {
        "workload": f"{distribution}/n={n}/d={d}",
        "policy": policy,
        "wall_s": round(best_wall, 4),
        "build_s": round(build, 4),
        "skyline_s": round(skyline, 4),
        "leaf_s": round(leaf, 4),
        "build%": round(100.0 * counters.build_wall_fraction, 1),
        "nodes": counters.nodes_created,
        "splits": counters.splits_performed,
        "tasks": counters.build_tasks,
        "lp": counters.lp_calls,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--dist", default=None,
                        help="distribution (IND/COR/ANTI); default: panel")
    parser.add_argument("--n", type=int, default=None, help="cardinality")
    parser.add_argument("--d", type=int, default=None, help="dimensionality")
    parser.add_argument("--queries", type=int, default=1,
                        help="queries per workload (default 1)")
    parser.add_argument("--policy", choices=("static", "cost", "both"),
                        default="both", help="split policy to profile")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="process-pool workers for construction + leaves")
    parser.add_argument("--repeat", type=int, default=1,
                        help="repetitions per cell; fastest wall is kept")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if (args.dist is None) != (args.n is None) or (args.n is None) != (args.d is None):
        parser.error("--dist/--n/--d must be given together (or none, for the panel)")
    panel = (
        [(args.dist, args.n, args.d)] if args.dist is not None else list(DEFAULT_PANEL)
    )
    policies = ("static", "cost") if args.policy == "both" else (args.policy,)

    rows = []
    for distribution, n, d in panel:
        for policy in policies:
            rows.append(
                profile_one(
                    distribution, n, d, policy,
                    queries=args.queries, jobs=args.jobs,
                    repeat=args.repeat, seed=args.seed,
                )
            )
            print(".", end="", flush=True)
    print()
    print(format_table(rows, title="Quad-tree construction profile (per-phase wall)"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
