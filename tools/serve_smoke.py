#!/usr/bin/env python
"""CI smoke for the network serving front (transport -> router -> admission).

Boots ``python -m repro.service serve --listen 127.0.0.1:0`` as a real
subprocess over two freshly built shard snapshots, then drives it the way
production traffic would and asserts the serving contract end to end:

* 32 concurrent clients, mixed shards, skewed hot-focal workload — every
  JSON answer must be bit-identical to a standalone ``maxrank()`` run on
  the same records (k*, region/dominator counts, tau, representative);
* the admission layer provably coalesced duplicates (single-flight
  counter > 0) and computed each unique query exactly once;
* SIGTERM drains gracefully: open connections get a farewell line naming
  the signal, the process prints its shutdown summary and exits 0.

Run from the repository root::

    python tools/serve_smoke.py [--clients 32]

Exits non-zero on the first broken promise.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro import CostCounters, MaxRankService, generate, maxrank  # noqa: E402

SHARDS = {
    "alpha": ("IND", 220, 3, 71),
    "beta": ("ANTI", 180, 3, 72),
}
# The query plan's key universe: one hot key every client opens with
# (forcing single-flight coalescing) plus a cold tail walked from a
# client-specific offset so shards and focals mix across connections.
HOT = ("alpha", 9, 1)
COLD = [
    ("alpha", 30, 1), ("beta", 9, 1), ("alpha", 77, 0),
    ("beta", 41, 0), ("alpha", 120, 1), ("beta", 88, 1),
]


def build_snapshots(tmp: Path) -> dict:
    paths = {}
    for name, (dist, n, d, seed) in SHARDS.items():
        with MaxRankService(generate(dist, n, d, seed=seed)) as service:
            path = tmp / f"{name}.rprs"
            service.save_snapshot(path)
            paths[name] = path
    return paths


def standalone_references() -> dict:
    """The ground truth: fresh ``maxrank()`` per unique (shard, focal, tau)."""
    datasets = {
        name: generate(dist, n, d, seed=seed)
        for name, (dist, n, d, seed) in SHARDS.items()
    }
    references = {}
    for shard, focal, tau in [HOT] + COLD:
        result = maxrank(datasets[shard], focal, tau=tau,
                         counters=CostCounters())
        references[(shard, focal, tau)] = {
            "k_star": result.k_star,
            "regions": result.region_count,
            "dominators": result.dominator_count,
            "tau": result.tau,
            "representative": [
                round(float(w), 9)
                for w in result.regions[0].representative_query()
            ] if result.regions else None,
        }
    return references


def connect(port: int):
    sock = socket.create_connection(("127.0.0.1", port), timeout=30)
    f = sock.makefile("rwb")
    greeting = json.loads(f.readline())
    assert greeting.get("ready") is True, f"bad greeting: {greeting}"
    return sock, f

def ask(f, payload: dict) -> dict:
    f.write((json.dumps(payload) + "\n").encode())
    f.flush()
    line = f.readline()
    assert line, "server closed the connection mid-request"
    return json.loads(line)


def run_clients(port: int, n_clients: int, references: dict) -> list:
    failures = []
    barrier = threading.Barrier(n_clients)

    def client(tag: int):
        try:
            sock, f = connect(port)
            barrier.wait()
            plan = [HOT] + [COLD[(tag + i) % len(COLD)]
                            for i in range(len(COLD))]
            for shard, focal, tau in plan:
                answer = ask(f, {"dataset": shard, "focal": focal, "tau": tau})
                expected = references[(shard, focal, tau)]
                got = {k: answer.get(k) for k in expected}
                if got != expected:
                    failures.append(
                        f"client {tag}: {shard}/{focal}/tau={tau} diverged "
                        f"from standalone maxrank(): {got} != {expected}"
                    )
            sock.close()
        except Exception as exc:  # noqa: BLE001 - smoke harness
            failures.append(f"client {tag}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=client, args=(tag,))
               for tag in range(n_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--clients", type=int, default=32)
    args = parser.parse_args(argv)

    failures = []
    references = standalone_references()

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmpdir:
        tmp = Path(tmpdir)
        paths = build_snapshots(tmp)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve",
             "--listen", "127.0.0.1:0",
             "--shard", f"alpha={paths['alpha']}",
             "--shard", f"beta={paths['beta']}",
             "--slots", "2", "--wave-window", "0.02"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env, cwd=REPO,
        )
        try:
            meta = json.loads(proc.stdout.readline())
            port = meta["listening"][1]
            print(f"listening on port {port}, shards {meta['datasets']}")

            failures += run_clients(port, args.clients, references)

            # The admission contract, read off the live server.
            _sock, f = connect(port)
            stats = ask(f, {"cmd": "stats"})
            coalesced = sum(s["coalesced"] for s in stats["slots"].values())
            computed = sum(s["queries_computed"]
                           for s in stats["services"].values())
            unique = len([HOT] + COLD)
            if coalesced <= 0:
                failures.append("single-flight never coalesced a duplicate")
            if computed != unique:
                failures.append(
                    f"computed {computed} queries for {unique} unique keys "
                    "(exactly-once violated)"
                )

            # Graceful drain: SIGTERM while a connection is open.
            proc.send_signal(signal.SIGTERM)
            farewell = json.loads(f.readline())
            if farewell.get("reason") != "SIGTERM":
                failures.append(f"bad farewell: {farewell}")
            out, err = proc.communicate(timeout=30)
            if proc.returncode != 0:
                failures.append(
                    f"server exited {proc.returncode}; stderr: {err.strip()}"
                )
            summary = json.loads(out.strip().splitlines()[-1])
            if summary.get("reason") != "SIGTERM":
                failures.append(f"bad shutdown summary: {summary}")
            expected_requests = args.clients * (1 + len(COLD)) + 1
            if summary.get("requests") != expected_requests:
                failures.append(
                    f"requests {summary.get('requests')} != "
                    f"{expected_requests} sent"
                )
            print(
                f"served {summary['requests']} requests over "
                f"{summary['connections']} connections "
                f"(coalesced {coalesced}, computed {computed}/{unique} unique)"
            )
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"serve-smoke: {args.clients} concurrent clients bit-identical to "
        "standalone maxrank(); SIGTERM drained cleanly"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
