#!/usr/bin/env python
"""Market-impact analysis for a hotel: the paper's motivating scenario.

A hotel owner wants to know the best position her property can ever reach in
a preference-ranked listing (TripAdvisor-style), and which customer profiles
would rank it that highly.  This example uses the simulated HOTEL dataset
(stars, value-for-money, rooms, facilities), runs MaxRank for one hotel, and
translates the result regions into customer-profile descriptions.

It also runs an *incremental* MaxRank (iMaxRank, τ = 2) to describe the
broader set of preferences under which the hotel stays within two positions
of its best possible rank — the "very strong appeal" audience the paper
suggests targeting with a marketing campaign.

Run with::

    python examples/hotel_market_positioning.py
"""

from __future__ import annotations

import numpy as np

from repro import imaxrank, load_real_dataset, maxrank
from repro.topk import layer_of, order_of


def describe_profile(query: np.ndarray, attribute_names) -> str:
    """Turn a preference vector into a short customer-profile description."""
    order = np.argsort(-query)
    primary = attribute_names[order[0]]
    secondary = attribute_names[order[1]]
    return (f"cares most about {primary} (weight {query[order[0]]:.2f}), "
            f"then {secondary} (weight {query[order[1]]:.2f})")


def main() -> None:
    hotels = load_real_dataset("HOTEL", n=1500, seed=11)
    names = hotels.attribute_names

    # Pick a solid mid-market hotel: good but not on the skyline.
    sums = hotels.records.sum(axis=1)
    focal = int(np.argsort(-sums)[40])
    print(f"Focal hotel #{focal}: "
          + ", ".join(f"{name}={value:.2f}" for name, value in zip(names, hotels.record(focal))))

    result = maxrank(hotels, focal)
    print("\nMaxRank analysis")
    print("  ", result.summary())
    print(f"   Best achievable position: {result.k_star} "
          f"out of {hotels.n} hotels")
    print(f"   Hotels that beat it under every preference (dominators): "
          f"{result.dominator_count}")
    print(f"   Convex-hull layer of the hotel (coarse upper-bound intuition): "
          f"{layer_of(hotels, focal, max_layers=5)}")

    print("\nCustomer profiles that rank the hotel at its best position:")
    for index, region in enumerate(result.regions[:5]):
        query = region.representative_query()
        print(f"   profile {index}: {describe_profile(query, names)}")
        assert order_of(hotels, hotels.record(focal), query) == result.k_star
    if result.region_count > 5:
        print(f"   ... and {result.region_count - 5} more regions")

    # Broaden the audience: preferences under which the hotel stays within
    # two positions of its best possible rank.
    relaxed = imaxrank(hotels, focal, tau=2)
    print("\niMaxRank (tau = 2) — near-best audience")
    print("  ", relaxed.summary())
    print(f"   regions covering ranks {relaxed.k_star}..{relaxed.k_star + 2}: "
          f"{relaxed.region_count}")
    volume_ratio = relaxed.total_volume() / max(result.total_volume(), 1e-12)
    print(f"   preference-space volume grows by a factor of {volume_ratio:.1f} "
          f"compared with the exact-best regions")


if __name__ == "__main__":
    main()
