#!/usr/bin/env python
"""Player-visibility profiling on the simulated NBA dataset.

Table 4 of the paper evaluates MaxRank on an NBA statistics dataset and
attributes its large number of result regions to the weak correlation between
statistics of players in different roles.  This example runs the analysis for
one player and interprets the result regions as "scouting profiles": which
weighting of statistics makes the player look best, and which statistics the
player is carried by in each profile.

It also contrasts a guard-like and a center-like player to show how the
preference regions differ between roles.

Run with::

    python examples/nba_player_visibility.py              # full market (slow)
    python examples/nba_player_visibility.py --sample 120 # CI-sized, < 1 min
    python examples/nba_player_visibility.py --sample 120 --snapshot nba.rprs

At 8 attributes the preference space is 7-dimensional, so the market size
drives the cost steeply; ``--sample`` shrinks the simulated market to keep
the run interactive (the profiles stay qualitatively the same).

``--snapshot`` routes the analysis through the service layer
(:class:`repro.MaxRankService`): the first run builds the R*-tree and
persists it; later runs cold-start from the file and skip the index build —
the realistic shape for a scouting tool that is consulted repeatedly.
Results are bit-identical with and without the snapshot.
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from repro import MaxRankService, load_real_dataset, maxrank
from repro.errors import SnapshotError
from repro.experiments import format_table


def pick_player(records: np.ndarray, weights: np.ndarray, quantile: float) -> int:
    """Pick a player near the given quantile of the weighted archetype score."""
    scores = records @ weights
    target = np.quantile(scores, quantile)
    return int(np.argmin(np.abs(scores - target)))


def analyse(nba, player: int, label: str, service=None) -> dict:
    result = (
        service.query(player, tau=0) if service is not None
        else maxrank(nba, player, tau=0)
    )
    names = nba.attribute_names
    # Collect, over all best-rank regions, the attribute that receives the
    # largest weight at the region's representative preference.
    lead_attributes = {}
    for region in result.regions:
        query = region.representative_query()
        lead = names[int(np.argmax(query))]
        lead_attributes[lead] = lead_attributes.get(lead, 0) + 1
    dominant_profile = max(lead_attributes, key=lead_attributes.get) if lead_attributes else "-"
    return {
        "player": label,
        "k_star": result.k_star,
        "dominators": result.dominator_count,
        "regions": result.region_count,
        "lead_attribute": dominant_profile,
    }


def open_service(args: argparse.Namespace):
    """Return ``(dataset, service_or_None)``, honouring ``--snapshot``.

    A usable snapshot skips both the dataset simulation and the R*-tree
    build; a missing or stale one (different sample size) is rebuilt and
    rewritten, so the flag is safe to always pass.
    """
    if not args.snapshot:
        return load_real_dataset("NBA", n=args.sample, seed=3), None
    path = Path(args.snapshot)
    if path.exists():
        try:
            service = MaxRankService.from_snapshot(path)
            loaded = service.dataset
            if (
                loaded.name == "NBA"
                and loaded.n == args.sample
                and loaded.attribute_names is not None
            ):
                print(f"loaded snapshot {path} (skipped simulation + index build)")
                return loaded, service
            print(f"snapshot {path} holds {loaded.name!r} n={loaded.n}, "
                  f"want NBA n={args.sample}; rebuilding")
            service.close()
        except SnapshotError as exc:
            print(f"snapshot unusable ({exc}); rebuilding")
    nba = load_real_dataset("NBA", n=args.sample, seed=3)
    service = MaxRankService(nba)
    service.save_snapshot(path)
    print(f"built index and saved snapshot to {path}")
    return nba, service


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--sample",
        type=int,
        default=350,
        metavar="N",
        help="number of simulated players to analyse (default 350; "
        "use ~120 for a sub-minute run)",
    )
    parser.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help="persist/reuse the built index through the service layer: the "
        "first run writes PATH, repeated runs skip the build entirely",
    )
    args = parser.parse_args()
    # Note: at 8 attributes the preference space is 7-dimensional; keep the
    # market small so the analysis finishes interactively (see EXPERIMENTS.md
    # on the cost of high dimensionalities).
    nba, service = open_service(args)
    names = list(nba.attribute_names)

    guard_weights = np.zeros(nba.d)
    guard_weights[names.index("assists")] = 0.6
    guard_weights[names.index("points")] = 0.4
    center_weights = np.zeros(nba.d)
    center_weights[names.index("rebounds")] = 0.5
    center_weights[names.index("blocks")] = 0.5

    players = [
        (pick_player(nba.records, guard_weights, 0.93), "playmaking guard"),
        (pick_player(nba.records, center_weights, 0.93), "rim-protecting center"),
    ]

    rows = [analyse(nba, player, label, service=service) for player, label in players]
    if service is not None:
        service.close()
    print(format_table(
        rows,
        ["player", "k_star", "dominators", "regions", "lead_attribute"],
        title=f"MaxRank visibility analysis on {nba.n} simulated NBA players",
    ))
    print("\nReading the table: k* is the best position the player can reach in any "
          "weighted ranking of the statistics; 'lead_attribute' is the statistic that "
          "carries the player in most of the preference regions where that best "
          "position is attained.")


if __name__ == "__main__":
    main()
