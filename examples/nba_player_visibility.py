#!/usr/bin/env python
"""Player-visibility profiling on the simulated NBA dataset.

Table 4 of the paper evaluates MaxRank on an NBA statistics dataset and
attributes its large number of result regions to the weak correlation between
statistics of players in different roles.  This example runs the analysis for
one player and interprets the result regions as "scouting profiles": which
weighting of statistics makes the player look best, and which statistics the
player is carried by in each profile.

It also contrasts a guard-like and a center-like player to show how the
preference regions differ between roles.

Run with::

    python examples/nba_player_visibility.py              # full market (slow)
    python examples/nba_player_visibility.py --sample 120 # CI-sized, < 1 min

At 8 attributes the preference space is 7-dimensional, so the market size
drives the cost steeply; ``--sample`` shrinks the simulated market to keep
the run interactive (the profiles stay qualitatively the same).
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import load_real_dataset, maxrank
from repro.experiments import format_table


def pick_player(records: np.ndarray, weights: np.ndarray, quantile: float) -> int:
    """Pick a player near the given quantile of the weighted archetype score."""
    scores = records @ weights
    target = np.quantile(scores, quantile)
    return int(np.argmin(np.abs(scores - target)))


def analyse(nba, player: int, label: str) -> dict:
    result = maxrank(nba, player, tau=0)
    names = nba.attribute_names
    # Collect, over all best-rank regions, the attribute that receives the
    # largest weight at the region's representative preference.
    lead_attributes = {}
    for region in result.regions:
        query = region.representative_query()
        lead = names[int(np.argmax(query))]
        lead_attributes[lead] = lead_attributes.get(lead, 0) + 1
    dominant_profile = max(lead_attributes, key=lead_attributes.get) if lead_attributes else "-"
    return {
        "player": label,
        "k_star": result.k_star,
        "dominators": result.dominator_count,
        "regions": result.region_count,
        "lead_attribute": dominant_profile,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--sample",
        type=int,
        default=350,
        metavar="N",
        help="number of simulated players to analyse (default 350; "
        "use ~120 for a sub-minute run)",
    )
    args = parser.parse_args()
    # Note: at 8 attributes the preference space is 7-dimensional; keep the
    # market small so the analysis finishes interactively (see EXPERIMENTS.md
    # on the cost of high dimensionalities).
    nba = load_real_dataset("NBA", n=args.sample, seed=3)
    names = list(nba.attribute_names)

    guard_weights = np.zeros(nba.d)
    guard_weights[names.index("assists")] = 0.6
    guard_weights[names.index("points")] = 0.4
    center_weights = np.zeros(nba.d)
    center_weights[names.index("rebounds")] = 0.5
    center_weights[names.index("blocks")] = 0.5

    players = [
        (pick_player(nba.records, guard_weights, 0.93), "playmaking guard"),
        (pick_player(nba.records, center_weights, 0.93), "rim-protecting center"),
    ]

    rows = [analyse(nba, player, label) for player, label in players]
    print(format_table(
        rows,
        ["player", "k_star", "dominators", "regions", "lead_attribute"],
        title=f"MaxRank visibility analysis on {nba.n} simulated NBA players",
    ))
    print("\nReading the table: k* is the best position the player can reach in any "
          "weighted ranking of the statistics; 'lead_attribute' is the statistic that "
          "carries the player in most of the preference regions where that best "
          "position is attained.")


if __name__ == "__main__":
    main()
