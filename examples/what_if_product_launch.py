#!/usr/bin/env python
"""What-if analysis for a product that has not been launched yet.

The paper notes that MaxRank supports "what-if" investigations: the focal
record does not have to belong to the dataset, so a provider can evaluate
several candidate configurations of a new product — before launching it — by
issuing one MaxRank query per configuration.

This example simulates a phone-plan-like market with three attributes
(data allowance, talk time, value-for-money), proposes a handful of candidate
configurations at different price points, and compares:

* the best rank each candidate could ever achieve (``k*``),
* how much of the preference space supports that best rank (region volume),
* the number of competitors that dominate it outright.

Run with::

    python examples/what_if_product_launch.py
"""

from __future__ import annotations

import numpy as np

from repro import Dataset, generate_correlated, maxrank
from repro.experiments import format_table


def build_market(seed: int = 23, n: int = 800) -> Dataset:
    """A moderately correlated market: better plans tend to be better overall."""
    base = generate_correlated(n, 3, seed=seed)
    return Dataset(base.records, attribute_names=("data_gb", "talk_time", "value"),
                   name="phone-plans")


def candidate_configurations() -> dict:
    """Candidate new plans: trade more allowance against value-for-money."""
    return {
        "budget":     np.array([0.35, 0.40, 0.90]),
        "balanced":   np.array([0.60, 0.60, 0.60]),
        "premium":    np.array([0.85, 0.80, 0.35]),
        "unlimited":  np.array([0.95, 0.95, 0.15]),
    }


def main() -> None:
    market = build_market()
    rows = []
    for name, configuration in candidate_configurations().items():
        result = maxrank(market, configuration)
        rows.append({
            "candidate": name,
            "k_star": result.k_star,
            "dominators": result.dominator_count,
            "regions": result.region_count,
            "best_rank_volume": round(result.total_volume(), 6),
        })

    print(format_table(
        rows,
        ["candidate", "k_star", "dominators", "regions", "best_rank_volume"],
        title=f"What-if MaxRank analysis over {market.n} existing plans",
    ))

    best = min(rows, key=lambda row: (row["k_star"], -row["best_rank_volume"]))
    print(f"\nRecommendation: launch the '{best['candidate']}' configuration — "
          f"it can reach rank {best['k_star']} and no other candidate reaches a better one "
          f"with a larger supporting preference region.")


if __name__ == "__main__":
    main()
