#!/usr/bin/env python
"""Quickstart: answer a MaxRank query on synthetic data.

The script generates a small independent (IND) dataset, picks a focal record,
and asks the library for the best rank the record can ever achieve under a
linear preference, together with the regions of the preference space where
that rank is attained.  It then cross-checks one reported region by running a
plain top-k query with a preference vector sampled from it.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import generate_independent, maxrank
from repro.topk import order_of, top_k


def main() -> None:
    # 1. A dataset of 400 options with 3 scoring attributes in [0, 1].
    data = generate_independent(400, 3, seed=7)
    focal = 42

    # 2. The MaxRank query: how high can option #42 ever rank, and for whom?
    result = maxrank(data, focal)
    print("MaxRank result")
    print("  ", result.summary())
    print(f"   best achievable rank k* = {result.k_star}")
    print(f"   dominators              = {result.dominator_count}")
    print(f"   regions |T|             = {result.region_count}")

    # 3. Inspect the regions: each one is a convex polytope of the reduced
    #    preference space; representative_query() lifts its centre back to a
    #    full, normalised preference vector.
    print("\nRegions where the best rank is attained:")
    for index, region in enumerate(result.regions):
        query = region.representative_query()
        weights = ", ".join(f"{w:.3f}" for w in query)
        print(f"   region {index}: representative preference = ({weights}), "
              f"outscored by {len(region.outscored_by)} incomparable records")

    # 4. Verify one region with an ordinary top-k query.
    region = result.regions[0]
    query = region.representative_query()
    verified_order = order_of(data, data.record(focal), query)
    print(f"\nVerification: rank of the focal record under the representative "
          f"preference = {verified_order} (expected {result.k_star})")

    shortlist = top_k(data, query, result.k_star)
    in_shortlist = focal in shortlist.indices
    print(f"Focal record appears in the top-{result.k_star} shortlist: {in_shortlist}")

    assert verified_order == result.k_star
    assert in_shortlist


if __name__ == "__main__":
    main()
